"""Local and global bundle adjustment.

The paper's FPGA accelerates "the local and global bundle adjustments of
ORB SLAM (~90% of execution time on RPi) by using simple modules of dense
fixed-size matrix algebra in a pipeline".  We implement BA by
resection-intersection alternation, which decomposes exactly into those
dense fixed-size blocks:

* *resection*: per-keyframe 4x4 normal-equation solves (motion only),
* *intersection*: per-landmark 3x3 normal-equation solves (structure only).

Each outer iteration alternates the two; operation counts are recorded per
block so platform models can price the stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.slam.dataset import CameraModel
from repro.slam.map import Keyframe, MapPoint, SlamMap
from repro.slam.tracking import (
    TrackingLostError,
    _pose_jacobian,
    camera_point,
    reprojection_residual,
    track_pose,
)

LOCAL_BA_WINDOW = 5

#: Levenberg-Marquardt iteration counts of the canonical (g2o-style) solver
#: whose cost the platform models price.  ORB-SLAM uses 5+10 LM iterations
#: for local BA and ~20 for full/global BA.
CANONICAL_LOCAL_BA_ITERATIONS = 15
CANONICAL_GLOBAL_BA_ITERATIONS = 20


def canonical_ba_operations(
    keyframes: int, points: int, residuals: int, iterations: int
) -> int:
    """Operation count of a canonical Schur-complement LM bundle adjustment.

    Our executed solver is resection-intersection alternation (cheap,
    block-diagonal); the system the paper measures (ORB-SLAM on g2o) solves
    the full sparse normal equations via the Schur complement.  The FPGA of
    Section 5.2 pipelines exactly that dense block algebra, so speedups must
    be priced against the canonical cost:

    * per residual, per iteration: 2x6 pose and 2x3 point Jacobians, the
      H_pp/H_ll/W block accumulations and robust kernel (~420 flops);
    * Schur complement: ~(avg covisible pairs per point) 6x6 block products
      per point (~650 flops each, ~8 pairs);
    * reduced camera solve: (6K)^3 / 3 flops.
    """
    if keyframes < 0 or points < 0 or residuals < 0 or iterations <= 0:
        raise ValueError("BA dimensions must be non-negative, iterations positive")
    per_iteration = (
        residuals * 420
        + points * 8 * 650
        + (6 * keyframes) ** 3 // 3
    )
    return per_iteration * iterations


@dataclass(frozen=True)
class BaResult:
    """Bundle-adjustment outcome and cost accounting.

    ``operations`` counts the arithmetic our alternation solver actually
    executed; ``modeled_operations`` prices the canonical Schur-complement
    solver on the same problem — the figure platform models consume.
    """

    initial_rms_px: float
    final_rms_px: float
    iterations: int
    keyframes: int
    points: int
    residuals: int
    operations: int
    modeled_operations: int = 0

    @property
    def improved(self) -> bool:
        return self.final_rms_px <= self.initial_rms_px + 1e-9


def _pair_arrays(
    keyframes: List[Keyframe],
    points: Dict[int, MapPoint],
    point_index: Optional[Dict[int, int]] = None,
):
    """Stack (keyframe, observation) pairs in scalar iteration order.

    Keyframe-major, observation-dict-minor — the order both scalar loops
    (:func:`_collect_residuals` and the per-keyframe resection gather) walk.
    Returns (landmarks, pixels, positions, cos_yaw, sin_yaw, rows) arrays;
    ``rows`` maps each pair to ``point_index`` (or -1 when not supplied).
    Pairs whose point id is absent from ``points`` are skipped, like the
    scalar ``points.get`` guard.
    """
    landmarks = []
    pixels = []
    positions = []
    cos_yaw = []
    sin_yaw = []
    rows = []
    for keyframe in keyframes:
        c = math.cos(keyframe.yaw_rad)
        s = math.sin(keyframe.yaw_rad)
        for point_id, pixel in keyframe.observations.items():
            point = points.get(point_id)
            if point is None:
                continue
            landmarks.append(point.position_m)
            pixels.append(pixel)
            positions.append(keyframe.position_m)
            cos_yaw.append(c)
            sin_yaw.append(s)
            rows.append(point_index[point_id] if point_index else -1)
    count = len(landmarks)
    return (
        np.asarray(landmarks, dtype=float).reshape(count, 3),
        np.asarray(pixels, dtype=float).reshape(count, 2),
        np.asarray(positions, dtype=float).reshape(count, 3),
        np.asarray(cos_yaw, dtype=float),
        np.asarray(sin_yaw, dtype=float),
        np.asarray(rows, dtype=np.int64),
    )


def _collect_residuals_batch(
    keyframes: List[Keyframe],
    points: Dict[int, MapPoint],
    camera: CameraModel,
) -> float:
    from repro.slam import kernels

    landmarks, pixels, positions, cos_yaw, sin_yaw, _ = _pair_arrays(
        keyframes, points
    )
    cam = kernels.camera_points_posed(landmarks, positions, cos_yaw, sin_yaw)
    valid = cam[:, 2] > kernels.MIN_CAMERA_Z
    idx = np.nonzero(valid)[0]
    if idx.size == 0:
        raise ValueError("no valid residuals in the BA problem")
    u, v = kernels.project_points(cam[idx], camera)
    du = u - pixels[idx, 0]
    dv = v - pixels[idx, 1]
    total_sq = float(np.add.reduce(du * du + dv * dv))
    return math.sqrt(total_sq / idx.size)


def _collect_residuals(
    keyframes: List[Keyframe],
    points: Dict[int, MapPoint],
    camera: CameraModel,
    engine: str = "batch",
) -> float:
    if engine == "batch":
        return _collect_residuals_batch(keyframes, points, camera)
    total_sq = 0.0
    count = 0
    for keyframe in keyframes:
        for point_id, pixel in keyframe.observations.items():
            point = points.get(point_id)
            if point is None:
                continue
            try:
                residual = reprojection_residual(
                    point.position_m,
                    pixel,
                    keyframe.position_m,
                    keyframe.yaw_rad,
                    camera,
                )
            except ValueError:
                continue
            total_sq += float(residual @ residual)
            count += 1
    if count == 0:
        raise ValueError("no valid residuals in the BA problem")
    return math.sqrt(total_sq / count)


def _refine_landmark(
    point: MapPoint,
    keyframes: List[Keyframe],
    camera: CameraModel,
) -> int:
    """One 3x3 Gauss-Newton step on a single landmark; returns ops."""
    normal = np.zeros((3, 3))
    rhs = np.zeros(3)
    used = 0
    for keyframe in keyframes:
        pixel = keyframe.observations.get(point.point_id)
        if pixel is None:
            continue
        try:
            residual = reprojection_residual(
                point.position_m, pixel, keyframe.position_m,
                keyframe.yaw_rad, camera,
            )
        except ValueError:
            continue
        jacobian = _landmark_jacobian(
            point.position_m, keyframe.position_m, keyframe.yaw_rad, camera
        )
        normal += jacobian.T @ jacobian
        rhs -= jacobian.T @ residual
        used += 1
    if used < 2:
        return 0  # under-constrained landmark; leave it alone
    try:
        delta = np.linalg.solve(normal + 1e-9 * np.eye(3), rhs)
    except np.linalg.LinAlgError:
        return 0
    if not np.all(np.isfinite(delta)):
        return 0  # near-singular solve: never write NaN into the map
    # Trust region: single-step landmark moves are bounded.
    norm = float(np.linalg.norm(delta))
    if norm > 0.5:
        delta *= 0.5 / norm
    point.position_m = point.position_m + delta
    return used * (2 * 3 * 3 * 2 + 60) + 27


def _refine_landmarks_batch(
    point_list: List[MapPoint],
    keyframes: List[Keyframe],
    camera: CameraModel,
) -> int:
    """One batched intersection pass over every landmark; returns ops.

    Pairs are stacked (point-major, keyframe-minor) — the scalar
    :func:`_refine_landmark` accumulation order — and the per-point 3x3
    normal equations are built with ``np.add.at`` and solved as one batched
    ``np.linalg.solve``.  Landmark updates are mutually independent (poses
    are fixed during intersection), so updating all points from the
    pass-start positions matches the scalar sequential sweep.
    """
    from repro.slam import kernels

    kf_cos = [math.cos(k.yaw_rad) for k in keyframes]
    kf_sin = [math.sin(k.yaw_rad) for k in keyframes]
    landmarks = []
    pixels = []
    positions = []
    cos_yaw = []
    sin_yaw = []
    rows = []
    for point_row, point in enumerate(point_list):
        for kf_index, keyframe in enumerate(keyframes):
            pixel = keyframe.observations.get(point.point_id)
            if pixel is None:
                continue
            landmarks.append(point.position_m)
            pixels.append(pixel)
            positions.append(keyframe.position_m)
            cos_yaw.append(kf_cos[kf_index])
            sin_yaw.append(kf_sin[kf_index])
            rows.append(point_row)
    pair_count = len(landmarks)
    if pair_count == 0:
        return 0
    idx, residuals, jacobians = kernels.landmark_blocks(
        np.asarray(landmarks, dtype=float).reshape(pair_count, 3),
        np.asarray(positions, dtype=float).reshape(pair_count, 3),
        np.asarray(cos_yaw, dtype=float),
        np.asarray(sin_yaw, dtype=float),
        np.asarray(pixels, dtype=float).reshape(pair_count, 2),
        camera,
    )
    point_count = len(point_list)
    rows_valid = np.asarray(rows, dtype=np.int64)[idx]
    block_jtj = np.einsum("mia,mib->mab", jacobians, jacobians)
    block_jtr = np.einsum("mia,mi->ma", jacobians, residuals)
    normals = np.zeros((point_count, 3, 3))
    rhs = np.zeros((point_count, 3))
    # np.add.at accumulates in pair order: per point, keyframe-minor — the
    # scalar loop's order; sums still round differently (allclose contract).
    np.add.at(normals, rows_valid, block_jtj)
    np.add.at(rhs, rows_valid, -block_jtr)
    used = np.bincount(rows_valid, minlength=point_count)
    refine = used >= 2
    refine_rows = np.nonzero(refine)[0]
    if refine_rows.size == 0:
        return 0
    systems = normals[refine_rows] + 1e-9 * np.eye(3)
    try:
        deltas = np.linalg.solve(systems, rhs[refine_rows][..., None])[..., 0]
    except np.linalg.LinAlgError:
        # Batched solve rejects the whole stack if any one system is
        # singular; fall back to per-point solves so only the singular
        # landmarks are skipped (scalar semantics).
        deltas = np.full((refine_rows.size, 3), np.nan)
        for slot in range(refine_rows.size):
            try:
                deltas[slot] = np.linalg.solve(systems[slot], rhs[refine_rows[slot]])
            except np.linalg.LinAlgError:
                continue
    operations = 0
    for slot, point_row in enumerate(refine_rows):
        delta = deltas[slot]
        if not np.all(np.isfinite(delta)):
            continue  # singular or corrupted solve: never write NaN
        norm = float(np.linalg.norm(delta))
        if norm > 0.5:
            delta = delta * (0.5 / norm)
        point = point_list[point_row]
        point.position_m = point.position_m + delta
        operations += int(used[point_row]) * (2 * 3 * 3 * 2 + 60) + 27
    return operations


def _landmark_jacobian(
    landmark_m: np.ndarray,
    position_m: np.ndarray,
    yaw_rad: float,
    camera: CameraModel,
) -> np.ndarray:
    """2x3 Jacobian of the pixel residual w.r.t. the landmark position."""
    jacobian = np.zeros((2, 3))
    base_point = camera_point(landmark_m, position_m, yaw_rad)
    base = np.array(camera.project(base_point))
    epsilon = 1e-6
    for k in range(3):
        perturbed = landmark_m.copy()
        perturbed[k] += epsilon
        point = camera_point(perturbed, position_m, yaw_rad)
        projected = np.array(camera.project(point))
        jacobian[:, k] = (projected - base) / epsilon
    return jacobian


def bundle_adjust(
    slam_map: SlamMap,
    keyframes: List[Keyframe],
    camera: CameraModel,
    iterations: int = 3,
    fix_first_pose: bool = True,
    canonical_iterations: int = None,
    engine: str = "batch",
) -> BaResult:
    """Resection-intersection BA over the given keyframes and their points.

    ``engine="batch"`` runs the vectorized kernels (stacked residuals,
    einsum normal equations, batched landmark solves); ``engine="scalar"``
    is the retained per-observation oracle.  Validity decisions, skip masks,
    used counts, iteration counts, and operation counts agree exactly;
    accumulated floats (poses, landmark positions, RMS) agree to allclose —
    the accumulation-order contract documented in :mod:`repro.slam.kernels`.
    """
    if engine not in ("batch", "scalar"):
        raise ValueError(f"unknown engine: {engine!r}")
    if not keyframes:
        raise ValueError("bundle adjustment needs at least one keyframe")
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    points = {
        p.point_id: p for p in slam_map.points_seen_by(keyframes)
    }
    initial_rms = _collect_residuals(keyframes, points, camera, engine=engine)
    operations = 0
    residual_count = sum(len(k.observations) for k in keyframes)
    for _ in range(iterations):
        # Resection: refine each keyframe pose against fixed structure.
        for index, keyframe in enumerate(keyframes):
            if fix_first_pose and index == 0:
                continue
            landmarks = []
            pixels = []
            for point_id, pixel in keyframe.observations.items():
                point = points.get(point_id)
                if point is None:
                    continue
                landmarks.append(point.position_m)
                pixels.append(pixel)
            try:
                result = track_pose(
                    landmarks,
                    pixels,
                    keyframe.position_m,
                    keyframe.yaw_rad,
                    camera,
                    max_iterations=2,
                    engine=engine,
                )
            except TrackingLostError:
                continue
            if not (
                np.all(np.isfinite(result.position_m))
                and math.isfinite(result.yaw_rad)
            ):
                continue  # keep the previous (finite) pose
            keyframe.set_pose_params(
                np.concatenate([result.position_m, [result.yaw_rad]])
            )
            operations += result.operations
        # Intersection: refine each landmark against fixed poses.
        if engine == "batch":
            operations += _refine_landmarks_batch(
                list(points.values()), keyframes, camera
            )
        else:
            for point in points.values():
                operations += _refine_landmark(point, keyframes, camera)
    final_rms = _collect_residuals(keyframes, points, camera, engine=engine)
    if not (math.isfinite(initial_rms) and math.isfinite(final_rms)):
        # Numerical sentinel: a NaN/Inf residual means the map is corrupted;
        # callers holding a checkpoint roll the map back.
        raise FloatingPointError("bundle adjustment produced non-finite residuals")
    return BaResult(
        initial_rms_px=initial_rms,
        final_rms_px=final_rms,
        iterations=iterations,
        keyframes=len(keyframes),
        points=len(points),
        residuals=residual_count,
        operations=operations,
        modeled_operations=canonical_ba_operations(
            len(keyframes),
            len(points),
            residual_count,
            canonical_iterations
            if canonical_iterations is not None
            else CANONICAL_LOCAL_BA_ITERATIONS,
        ),
    )


def local_bundle_adjust(
    slam_map: SlamMap,
    camera: CameraModel,
    window: int = LOCAL_BA_WINDOW,
    iterations: int = 2,
    engine: str = "batch",
) -> BaResult:
    """Local BA over the most recent ``window`` keyframes."""
    keyframes = slam_map.recent_keyframes(window)
    return bundle_adjust(
        slam_map,
        keyframes,
        camera,
        iterations=iterations,
        canonical_iterations=CANONICAL_LOCAL_BA_ITERATIONS,
        engine=engine,
    )


def global_bundle_adjust(
    slam_map: SlamMap,
    camera: CameraModel,
    iterations: int = 3,
    engine: str = "batch",
) -> BaResult:
    """Global BA over every keyframe (the loop-closure refinement)."""
    keyframes = [slam_map.keyframes[i] for i in sorted(slam_map.keyframes)]
    return bundle_adjust(
        slam_map,
        keyframes,
        camera,
        iterations=iterations,
        canonical_iterations=CANONICAL_GLOBAL_BA_ITERATIONS,
        engine=engine,
    )
