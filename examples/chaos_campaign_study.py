#!/usr/bin/env python
"""Chaos campaign study: mapping the failure surface of the flight stack.

The hand-written fault matrix (``examples/failsafe_study.py``) probes ten
known corners of the reliability envelope.  This example explores the
*interior*: it samples a fixed-seed campaign of compound fault schedules —
random kinds, onsets, durations, severities, with overlapping windows —
flies every trial under the safety-invariant monitor, and triages the
failures into buckets keyed by ``violated invariant x active faults x
failsafe state``.

It then demonstrates the black-box workflow on the worst failure: dump its
flight-recorder trace to JSON, reload it, and re-fly the trial from the
trace alone to show the bit-for-bit replay contract.

Run:  python examples/chaos_campaign_study.py
"""

from repro.chaos import (
    CampaignConfig,
    replay_trial,
    run_campaign,
    triage,
)
from repro.chaos.recorder import BlackBoxTrace
from repro.core.parallel import SweepRunnerConfig

CONFIG = CampaignConfig(
    campaign_seed=2021,
    trials=40,
    duration_s=20.0,
    physics_rate_hz=200.0,
    max_faults=3,
)


def main() -> None:
    print(f"== Chaos campaign: {CONFIG.trials} trials, seed {CONFIG.campaign_seed} ==")
    results = run_campaign(CONFIG, SweepRunnerConfig(parallel=False))
    report = triage(results)
    print(
        f"verdicts: {report.safe} safe / {report.violations} violation / "
        f"{report.crashes} crash"
    )
    print(
        f"survival rate {report.survival_rate:.0%}, "
        f"clean rate {report.clean_rate:.0%}"
    )
    if report.mttr_p50_s is not None:
        print(
            f"failsafe reaction: p50 {report.mttr_p50_s:.2f} s, "
            f"p90 {report.mttr_p90_s:.2f} s"
        )

    print()
    print("== Failure buckets (biggest first) ==")
    if not report.buckets:
        print("no failures to bucket")
    for bucket in report.buckets:
        faults = "+".join(bucket.active_faults) or "no-active-fault"
        print(
            f"{bucket.count:3d}x  {bucket.invariant:<22s} "
            f"[{faults}]  {bucket.failsafe}"
        )

    failed = [result for result in results if result.failed]
    if not failed:
        print("\nevery trial flew clean — nothing to replay")
        return

    worst = max(
        failed, key=lambda result: (result.verdict == "crash", -result.min_soc)
    )
    assert worst.trace is not None
    print()
    print(f"== Black-box post-mortem: trial {worst.spec.trial_index} ==")
    print(f"verdict: {worst.verdict} ({worst.violated_invariant})")
    print(f"schedule: {[e.kind.value for e in worst.spec.schedule.events]}")
    for time_s, text in worst.trace.events[-4:]:
        print(f"  {time_s:6.1f} s  {text}")
    print(
        f"recorder: {len(worst.trace.ticks)} ticks retained, "
        f"{worst.trace.dropped_ticks} rolled out of the ring"
    )

    print()
    print("== Replay from the trace file alone ==")
    restored = BlackBoxTrace.from_json(worst.trace.to_json())
    replayed = replay_trial(restored, CONFIG)
    print(f"identical metrics:     {replayed.metrics() == worst.metrics()}")
    print(
        "identical trace:       "
        f"{replayed.trace is not None and replayed.trace.fingerprint() == worst.trace.fingerprint()}"
    )


if __name__ == "__main__":
    main()
