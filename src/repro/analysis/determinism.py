"""Determinism pass: protect the seedable-scenario guarantee.

The fault matrix promises bit-for-bit reproducibility per seed.  Three
things silently break that promise:

* the *global* RNGs (``np.random.rand`` and friends, stdlib ``random.*``) —
  all randomness must flow through an explicitly seeded
  ``np.random.default_rng(seed)`` / ``random.Random(seed)`` instance;
* wall-clock reads (``time.time``, ``datetime.now``) inside simulation
  code — simulated time comes from the sim clock, never the host;
* iterating an unordered ``set`` where the visit order feeds results —
  Python sets hash-order their elements, so two runs can disagree.
"""

from __future__ import annotations

import ast
from typing import Optional, List, Sequence, Set

from repro.analysis.base import Checker, SourceFile, Violation

#: np.random attributes that are fine: they construct seeded generators.
_SEEDED_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "Philox",
    "SFC64",
    "MT19937",
    "BitGenerator",
    "RandomState",  # legacy, but instantiated with an explicit seed
}

#: stdlib random attributes that are fine (seeded instance construction).
_STDLIB_OK = {"Random", "SystemRandom"}

#: Wall-clock callables, as dotted tails: matches time.time, datetime.now...
_WALLCLOCK_TAILS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


class DeterminismChecker(Checker):
    """Flag global RNG use, wall-clock reads, and unordered-set iteration."""

    rules = ("det-global-rng", "det-wallclock", "det-set-order")

    def check(
        self, files: Sequence[SourceFile], program: Optional[object] = None
    ) -> List[Violation]:
        out: List[Violation] = []
        for src in files:
            random_aliases = _stdlib_random_aliases(src.tree)
            for node in ast.walk(src.tree):
                if isinstance(node, ast.Call):
                    self._call(out, src, node, random_aliases)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    self._iteration(out, src, node.iter)
                elif isinstance(node, ast.comprehension):
                    self._iteration(out, src, node.iter)
        return out

    def _call(
        self,
        out: List[Violation],
        src: SourceFile,
        node: ast.Call,
        random_aliases: Set[str],
    ) -> None:
        chain = _attribute_chain(node.func)
        if len(chain) < 2:
            return
        head, tail = chain[0], chain[-1]
        # np.random.<fn>(...) — any draw from the unseeded global generator.
        if (
            len(chain) >= 3
            and head in ("np", "numpy")
            and chain[-2] == "random"
            and tail not in _SEEDED_CONSTRUCTORS
        ):
            self.emit(
                out,
                src,
                "det-global-rng",
                node,
                f"np.random.{tail} draws from the unseeded global generator; "
                "use a np.random.default_rng(seed) instance",
            )
            return
        # random.<fn>(...) via the stdlib module.
        if head in random_aliases and len(chain) == 2 and tail not in _STDLIB_OK:
            self.emit(
                out,
                src,
                "det-global-rng",
                node,
                f"random.{tail} uses the process-global RNG; "
                "use random.Random(seed)",
            )
            return
        if (chain[-2], tail) in _WALLCLOCK_TAILS:
            self.emit(
                out,
                src,
                "det-wallclock",
                node,
                f"{'.'.join(chain)} reads the host clock; "
                "simulation time must come from the sim clock",
            )

    def _iteration(self, out: List[Violation], src: SourceFile, iter_node: ast.expr) -> None:
        if _is_unordered_set(iter_node):
            self.emit(
                out,
                src,
                "det-set-order",
                iter_node,
                "iteration over an unordered set; wrap in sorted(...) so the "
                "visit order is stable across runs",
            )


def _attribute_chain(node: ast.expr) -> List[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty when the head is not a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _stdlib_random_aliases(tree: ast.AST) -> Set[str]:
    """Names under which the stdlib ``random`` module is imported."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
    return aliases


def _is_unordered_set(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        # a & b via set.intersection etc. is still a set, but resolving the
        # receiver's type statically is unreliable; only literal/constructor
        # forms are flagged.
    return False
