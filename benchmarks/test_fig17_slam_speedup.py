"""Figure 17: ORB-SLAM speedup over the RPi for TX2 and FPGA across all
eleven EuRoC-like sequences, broken down by stage, with geometric means."""

import math

import pytest

from repro.platforms.profiles import figure17_study, rpi4_profile
from repro.slam.pipeline import Stage

from conftest import print_table


def test_fig17_per_sequence_speedups(benchmark, slam_results):
    study = benchmark.pedantic(
        figure17_study, args=(slam_results,), rounds=3, iterations=1
    )

    rows = []
    for result in slam_results:
        for platform in ("TX2", "FPGA", "ASIC"):
            entry = study.for_sequence(result.sequence_name, platform)
            rows.append(
                (
                    result.sequence_name,
                    platform,
                    f"{entry.total_speedup:.2f}x",
                    f"{entry.stage_speedup[Stage.FEATURE_EXTRACTION]:.1f}x",
                    f"{entry.stage_speedup[Stage.LOCAL_BA]:.1f}x",
                    f"{entry.stage_speedup[Stage.GLOBAL_BA]:.1f}x",
                )
            )
    rows.append(("GMEAN", "TX2", f"{study.geomean('TX2'):.2f}x", "", "", ""))
    rows.append(("GMEAN", "FPGA", f"{study.geomean('FPGA'):.2f}x", "", "", ""))
    rows.append(("GMEAN", "ASIC", f"{study.geomean('ASIC'):.2f}x", "", "", ""))
    print_table(
        "Figure 17 — SLAM speedup over RPi (paper GMEAN: TX2 2.16x, FPGA 30.70x)",
        ("sequence", "platform", "total", "feat/match", "local BA", "global BA"),
        rows,
    )

    # Paper geomeans, within model tolerance.
    assert study.geomean("TX2") == pytest.approx(2.16, rel=0.25)
    assert study.geomean("FPGA") == pytest.approx(30.7, rel=0.30)
    assert study.geomean("ASIC") == pytest.approx(23.53, rel=0.30)

    # Every sequence individually speeds up on every platform.
    for entry in study.speedups:
        assert entry.total_speedup > 1.0

    # BA dominates RPi time on every sequence (paper ~90%).
    rpi = rpi4_profile()
    for result in slam_results:
        assert rpi.ba_time_fraction(result.breakdown) > 0.70


def test_fig17_realtime_on_all_platforms(benchmark, slam_results):
    """Paper: 'all these implementations, including the slowest, meet the
    rate of sensors' — 20 FPS cameras here."""
    from repro.platforms.profiles import all_profiles

    def worst_fps():
        worst = math.inf
        for result in slam_results:
            duration = result.frames_processed
            for profile in all_profiles():
                fps = duration / profile.total_time_s(result.breakdown)
                worst = min(worst, fps)
        return worst

    fps = benchmark.pedantic(worst_fps, rounds=3, iterations=1)
    print(f"\nworst-case frames per second across platforms: {fps:.0f}")
    assert fps > 20.0


def test_fig17_slam_accuracy_preserved(benchmark, slam_results):
    """Offloading must not change results: the pipeline itself stays
    accurate across sequences ('confirming SLAM key metrics')."""

    def worst_ate():
        return max(result.ate_rmse_m for result in slam_results)

    ate = benchmark.pedantic(worst_ate, rounds=3, iterations=1)
    rows = [
        (r.sequence_name, f"{r.ate_rmse_m * 100:.1f} cm",
         str(r.tracking_failures), str(r.keyframes), str(r.map_points))
        for r in slam_results
    ]
    print_table(
        "SLAM key metrics per sequence",
        ("sequence", "ATE RMSE", "track losses", "keyframes", "map points"),
        rows,
    )
    assert ate < 0.5
