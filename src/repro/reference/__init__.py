"""The paper's open-source reference drone build (Section 4, Figure 14)."""

from repro.reference.build import (
    EXTRA_PAYLOAD_CAPACITY_G,
    FIGURE14_WEIGHTS_G,
    TOTAL_COST_USD,
    BuildPart,
    avionics_weight_g,
    catalog_consistency,
    major_components,
    simulator_model,
    total_weight_g,
    weight_breakdown,
)

__all__ = [
    "EXTRA_PAYLOAD_CAPACITY_G",
    "FIGURE14_WEIGHTS_G",
    "TOTAL_COST_USD",
    "BuildPart",
    "avionics_weight_g",
    "catalog_consistency",
    "major_components",
    "simulator_model",
    "total_weight_g",
    "weight_breakdown",
]
