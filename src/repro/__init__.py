"""repro — reproduction of "Quantifying the Design-Space Tradeoffs in
Autonomous Drones" (Hadidi et al., ASPLOS 2021).

Subpackages
-----------
core
    The paper's contribution: Equations 1-7, design-point evaluation,
    design-space sweeps, fit re-derivation, validation, and the Figure 12
    wizard.
components
    Synthetic commercial-component census (batteries, ESCs, frames, motors,
    propellers, boards, sensors) and the commercial-drone database.
physics
    Propulsion/airframe physics: momentum-theory propellers, BLDC motors,
    LiPo packs, 6-DOF rigid body, environment.
control
    Inner-/outer-loop control stack: PIDs, hierarchical cascade with
    time-scale separation, EKF state estimation, motor mixer.
sensors
    On-board sensor models at Table 2 data rates (IMU, barometer, GPS,
    magnetometer).
sim
    Multirate flight simulator, missions, power tracing, telemetry.
slam
    Feature-based SLAM pipeline (tracking + local/global bundle adjustment)
    on synthetic EuRoC-like sequences.
platforms
    Trace-driven microarchitecture simulation (caches, TLB, branch
    predictor, in-order core) and accelerator/power models of RPi4, Jetson
    TX2, FPGA, and ASIC platforms.
autopilot
    ArduCopter-like autopilot, DroneKit-like API, MAVLink-like transport.
reference
    The paper's open-source reference drone build (Figure 14).
"""

__version__ = "1.0.0"

PAPER_TITLE = "Quantifying the Design-Space Tradeoffs in Autonomous Drones"
PAPER_VENUE = "ASPLOS 2021"
PAPER_DOI = "10.1145/3445814.3446721"
