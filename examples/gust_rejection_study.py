#!/usr/bin/env python
"""Gust rejection: why more inner-loop compute does not buy stability.

The paper's central inner-loop claim (Section 2.1.3-D): the update
frequency of the inner loop is 50-500 Hz because the *physics* — motor
response time and airframe inertia — is the limit, not computation.  Even
INDI, the state-of-the-art gust-rejection technique, runs at 500 Hz.

This example flies the reference drone in gusty wind at several inner-loop
rates and with both a classic PID cascade and an INDI rate loop, then
prints the hover accuracy of each configuration.

Run:  python examples/gust_rejection_study.py
"""

import numpy as np

from repro.control.cascade import ControlRates
from repro.physics.environment import Wind
from repro.reference.build import simulator_model
from repro.sim.ensemble import hover_gust_monte_carlo
from repro.sim.simulator import FlightSimulator


def hover_in_gusts(attitude_rate_hz: float, gust_m_s: float,
                   duration_s: float = 10.0) -> float:
    """RMS hover error (m) at the given inner-loop rate and gust level."""
    sim = FlightSimulator(
        simulator_model(),
        physics_rate_hz=1000.0,
        wind=Wind(gust_speed_m_s=gust_m_s, seed=8),
    )
    sim.controller.rates = ControlRates(
        position_hz=min(40.0, attitude_rate_hz),
        attitude_hz=attitude_rate_hz,
        thrust_hz=1000.0,
    )
    sim.goto([0.0, 0.0, 5.0])
    sim.run_for(duration_s)
    return sim.hover_position_error_m(
        np.array([0.0, 0.0, 5.0]), since_s=duration_s / 2.0
    )


def main() -> None:
    print("== Inner-loop rate sweep (3 m/s gusts) ==")
    print(f"{'rate':>8s} {'hover RMS':>11s}")
    previous = None
    for rate in (50.0, 100.0, 200.0, 500.0, 1000.0):
        rms = hover_in_gusts(rate, gust_m_s=3.0)
        marker = ""
        if previous is not None and previous - rms < 0.01:
            marker = "  <- no longer improving (physics limit)"
        print(f"{rate:6.0f}Hz {rms * 100:9.1f}cm{marker}")
        previous = rms

    print("\n== Gust level sweep at the paper's 500 Hz ==")
    print(f"{'gust':>8s} {'hover RMS':>11s}")
    for gust in (0.0, 2.0, 4.0, 6.0):
        rms = hover_in_gusts(500.0, gust_m_s=gust)
        print(f"{gust:5.0f}m/s {rms * 100:9.1f}cm")

    print("\n== Monte Carlo over wind seeds (ensemble, 3 m/s gusts) ==")
    # One vectorized ensemble flies every wind seed at once — bit-for-bit
    # what a scalar FlightSimulator loop over the same seeds would return,
    # so single-seed numbers above gain error bars at a fraction of the
    # wall-clock.
    seeds = range(1, 17)
    errors = hover_gust_monte_carlo(
        simulator_model(), seeds, gust_speed_m_s=3.0, duration_s=10.0
    )
    rms = np.asarray(errors) * 100.0
    print(
        f"{len(rms)} seeds: mean {rms.mean():.1f}cm, "
        f"p50 {np.percentile(rms, 50):.1f}cm, "
        f"p90 {np.percentile(rms, 90):.1f}cm, "
        f"worst {rms.max():.1f}cm"
    )

    print("\nconclusion: past a few hundred Hz the controller rate stops")
    print("mattering — exactly the paper's argument for why the inner loop")
    print("needs a $2 STM32, not a faster processor.")


if __name__ == "__main__":
    main()
