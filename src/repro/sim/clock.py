"""Multirate task scheduler.

Drones service many loops at different rates (Table 2: sensors at 10-200 Hz,
thrust at 1 kHz, attitude at 200 Hz, position at 40 Hz, telemetry at a few
Hz).  :class:`MultirateScheduler` is a small deterministic executive: tasks
register with a rate, and each ``tick`` runs whichever tasks are due,
recording per-task execution counts and (optionally) deadline misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class ScheduledTask:
    """One periodic task."""

    name: str
    rate_hz: float
    callback: Callable[[float], None]
    next_due_s: float = 0.0
    executions: int = 0
    #: Worst-case lateness observed (s); stays 0 with an exact tick grid.
    max_lateness_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name cannot be empty")
        if self.rate_hz <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_hz}")

    @property
    def period_s(self) -> float:
        return 1.0 / self.rate_hz


class MultirateScheduler:
    """Deterministic executive running periodic tasks on a fixed tick grid."""

    def __init__(self, tick_rate_hz: float = 1000.0):
        if tick_rate_hz <= 0:
            raise ValueError(f"tick rate must be positive, got {tick_rate_hz}")
        self.tick_rate_hz = tick_rate_hz
        self.time_s = 0.0
        self._tasks: List[ScheduledTask] = []

    @property
    def tick_period_s(self) -> float:
        return 1.0 / self.tick_rate_hz

    def add_task(
        self, name: str, rate_hz: float, callback: Callable[[float], None]
    ) -> ScheduledTask:
        """Register a periodic task; ``callback`` receives its period (s).

        A task cannot run faster than the tick grid; requesting that is a
        configuration error, not something to silently round.
        """
        if rate_hz > self.tick_rate_hz + 1e-9:
            raise ValueError(
                f"task {name!r} rate {rate_hz} Hz exceeds tick rate "
                f"{self.tick_rate_hz} Hz"
            )
        if any(task.name == name for task in self._tasks):
            raise ValueError(f"duplicate task name {name!r}")
        task = ScheduledTask(name=name, rate_hz=rate_hz, callback=callback)
        self._tasks.append(task)
        return task

    def remove_task(self, name: str) -> None:
        before = len(self._tasks)
        self._tasks = [t for t in self._tasks if t.name != name]
        if len(self._tasks) == before:
            raise KeyError(f"no task named {name!r}")

    def tick(self) -> None:
        """Advance one tick, running every task whose period elapsed.

        Deadlines advance by whole periods from the previous deadline (not
        from "now") so off-grid periods do not drift; a task that falls
        behind is re-anchored to the present rather than firing a backlog.
        """
        self.time_s += self.tick_period_s
        for task in self._tasks:
            if self.time_s + 1e-12 >= task.next_due_s:
                lateness = self.time_s - task.next_due_s
                if task.executions > 0 and lateness > task.max_lateness_s:
                    task.max_lateness_s = lateness
                task.next_due_s = max(
                    task.next_due_s + task.period_s,
                    self.time_s - self.tick_period_s / 2.0,
                )
                task.callback(task.period_s)
                task.executions += 1

    def run_for(self, duration_s: float) -> None:
        """Tick continuously for ``duration_s`` simulated seconds."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        ticks = int(round(duration_s * self.tick_rate_hz))
        for _ in range(ticks):
            self.tick()

    def execution_counts(self) -> Dict[str, int]:
        return {task.name: task.executions for task in self._tasks}

    def measured_rates_hz(self) -> Dict[str, float]:
        """Observed execution rate of every task since time zero."""
        if self.time_s <= 0:
            raise ValueError("no time has elapsed; rates undefined")
        return {
            task.name: task.executions / self.time_s for task in self._tasks
        }

    def find_task(self, name: str) -> Optional[ScheduledTask]:
        for task in self._tasks:
            if task.name == name:
                return task
        return None
