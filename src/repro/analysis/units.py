"""Units pass: dimensional analysis over variable-name suffix conventions.

The repo encodes units in names — ``mass_kg``, ``thrust_n``, ``rate_hz``,
``velocity_m_s`` — which makes the paper's Eq. 1-7 arithmetic auditable by
machine.  A :class:`Unit` is a vector of base-dimension exponents (mass,
length, time, current, temperature, angle) plus a scale tag, so quantities
with the same dimension but different magnitudes (``_g`` vs ``_kg``,
``_rpm`` vs ``_rad_s``, ``_wh`` vs ``_j``, ``_c`` vs ``_k``) still refuse
to add.

The pass flags:

* ``a + b`` / ``a - b`` / ``a += b`` where both operands carry known,
  different units;
* comparisons (``a < b`` etc.) between known, different units;
* keyword arguments whose name carries one unit while the value carries
  another (``f(mass_kg=thrust_n)``).

Multiplication and division intentionally pass: they legitimately derive
new units, and the result's unit is recorded in the *receiving* name.
Calls contribute units through the callee's name suffix
(``air_density_kg_m3(...)`` is a ``kg_m3`` expression).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.base import Checker, SourceFile, Violation

#: Base-dimension exponents: (mass, length, time, current, temperature, angle).
Dims = Tuple[int, int, int, int, int, int]


@dataclass(frozen=True)
class Unit:
    """A physical unit: dimension vector plus a scale/offset family tag.

    ``scale`` separates same-dimension units that must not mix directly
    (grams vs kilograms, rpm vs rad/s, Wh vs J, Celsius vs Kelvin).
    """

    name: str
    dims: Dims
    scale: str = ""

    def compatible(self, other: "Unit") -> bool:
        return self.dims == other.dims and self.scale == other.scale


def _u(name: str, dims: Dims, scale: str = "") -> Unit:
    return Unit(name=name, dims=dims, scale=scale)


_MASS: Dims = (1, 0, 0, 0, 0, 0)
_LEN: Dims = (0, 1, 0, 0, 0, 0)
_TIME: Dims = (0, 0, 1, 0, 0, 0)
_CURR: Dims = (0, 0, 0, 1, 0, 0)
_TEMP: Dims = (0, 0, 0, 0, 1, 0)
_ANGLE: Dims = (0, 0, 0, 0, 0, 1)
_FORCE: Dims = (1, 1, -2, 0, 0, 0)
_ENERGY: Dims = (1, 2, -2, 0, 0, 0)
_POWER: Dims = (1, 2, -3, 0, 0, 0)

#: Suffix token(s) -> unit.  Longest trailing token sequence wins, so
#: ``velocity_m_s`` resolves to m/s rather than seconds.
SUFFIX_REGISTRY: Dict[str, Unit] = {
    # mass
    "kg": _u("kg", _MASS),
    "g": _u("g", _MASS, scale="milli"),
    # length / kinematics
    "m": _u("m", _LEN),
    "mm": _u("mm", _LEN, scale="milli"),
    "m_s": _u("m/s", (0, 1, -1, 0, 0, 0)),
    "m_s2": _u("m/s^2", (0, 1, -2, 0, 0, 0)),
    "m_s3": _u("m/s^3", (0, 1, -3, 0, 0, 0)),
    # time / frequency
    "s": _u("s", _TIME),
    "ms": _u("ms", _TIME, scale="milli"),
    "us": _u("us", _TIME, scale="micro"),
    "h": _u("h", _TIME, scale="hour"),
    "hz": _u("Hz", (0, 0, -1, 0, 0, 0)),
    "khz": _u("kHz", (0, 0, -1, 0, 0, 0), scale="kilo"),
    "mhz": _u("MHz", (0, 0, -1, 0, 0, 0), scale="mega"),
    "ghz": _u("GHz", (0, 0, -1, 0, 0, 0), scale="giga"),
    "s2": _u("s^2", (0, 0, 2, 0, 0, 0)),
    # angles and rotation
    "rad": _u("rad", _ANGLE),
    "deg": _u("deg", _ANGLE, scale="deg"),
    "rad_s": _u("rad/s", (0, 0, -1, 0, 0, 1)),
    "rad_s2": _u("rad/s^2", (0, 0, -2, 0, 0, 1)),
    "deg_s": _u("deg/s", (0, 0, -1, 0, 0, 1), scale="deg"),
    "rpm": _u("rpm", (0, 0, -1, 0, 0, 1), scale="rev_min"),
    # mechanics
    "n": _u("N", _FORCE),
    "nm": _u("N*m", _ENERGY, scale="torque"),
    "n_m": _u("N*m", _ENERGY, scale="torque"),
    "j": _u("J", _ENERGY),
    "wh": _u("Wh", _ENERGY, scale="watt_hour"),
    "wh_kg": _u("Wh/kg", (0, 2, -2, 0, 0, 0), scale="watt_hour"),
    "kg_m2": _u("kg*m^2", (1, 2, 0, 0, 0, 0)),
    "kg_m3": _u("kg/m^3", (1, -3, 0, 0, 0, 0)),
    "pa": _u("Pa", (1, -1, -2, 0, 0, 0)),
    "kpa": _u("kPa", (1, -1, -2, 0, 0, 0), scale="kilo"),
    # electrical
    "w": _u("W", _POWER),
    "kw": _u("kW", _POWER, scale="kilo"),
    "v": _u("V", (1, 2, -3, -1, 0, 0)),
    "a": _u("A", _CURR),
    "ah": _u("Ah", (0, 0, 1, 1, 0, 0), scale="amp_hour"),
    "mah": _u("mAh", (0, 0, 1, 1, 0, 0), scale="milliamp_hour"),
    "ohm": _u("ohm", (1, 2, -3, -2, 0, 0)),
    # thermal
    "k": _u("K", _TEMP),
    "c": _u("degC", _TEMP, scale="celsius"),
    "k_w": _u("K/W", (-1, -2, 3, 0, 1, 0)),
    # dimensionless families kept distinct from raw numbers
    "pct": _u("%", (0, 0, 0, 0, 0, 0), scale="percent"),
    "db": _u("dB", (0, 0, 0, 0, 0, 0), scale="decibel"),
}

#: Longest suffix (in underscore-separated tokens) we attempt to match.
_MAX_SUFFIX_TOKENS = max(key.count("_") + 1 for key in SUFFIX_REGISTRY)


def unit_of_name(name: str) -> Optional[Unit]:
    """Unit carried by an identifier, per the suffix convention.

    The identifier must have at least one underscore before the suffix —
    a bare ``m`` or ``s`` is a math variable, not a measurement.
    """
    tokens = name.lower().strip("_").split("_")
    if len(tokens) < 2:
        return None
    for width in range(min(_MAX_SUFFIX_TOKENS, len(tokens) - 1), 0, -1):
        candidate = "_".join(tokens[-width:])
        unit = SUFFIX_REGISTRY.get(candidate)
        if unit is not None:
            return unit
    return None


def unit_of_expr(node: ast.expr) -> Optional[Unit]:
    """Unit of an expression, when the suffix convention can name one.

    Handles identifiers, attribute tails (``self.mass_kg``), unary +/-,
    and calls whose callee name carries a suffix (``drag_force_n(...)``).
    Everything else — subscripts, arithmetic, literals — is unknown.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        return unit_of_expr(node.operand)
    if isinstance(node, ast.Name):
        return unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_name(node.attr)
    if isinstance(node, ast.Call):
        return unit_of_expr(node.func)
    return None


class UnitsChecker(Checker):
    """Flag additive/comparative mixing of incompatible units."""

    rules = ("units-mismatch",)

    def check(
        self, files: Sequence[SourceFile], program: Optional[object] = None
    ) -> List[Violation]:
        out: List[Violation] = []
        for src in files:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub)
                ):
                    self._pair(out, src, node, node.left, node.right, _op_word(node.op))
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub)
                ):
                    self._pair(
                        out, src, node, node.target, node.value, _op_word(node.op)
                    )
                elif isinstance(node, ast.Compare):
                    left = node.left
                    for op, right in zip(node.ops, node.comparators):
                        if isinstance(
                            op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
                        ):
                            self._pair(out, src, node, left, right, "compared with")
                        left = right
                elif isinstance(node, ast.Call):
                    self._keywords(out, src, node)
        return out

    def _pair(
        self,
        out: List[Violation],
        src: SourceFile,
        node: ast.AST,
        left: ast.expr,
        right: ast.expr,
        verb: str,
    ) -> None:
        left_unit = unit_of_expr(left)
        right_unit = unit_of_expr(right)
        if left_unit is None or right_unit is None:
            return
        if left_unit.compatible(right_unit):
            return
        self.emit(
            out,
            src,
            "units-mismatch",
            node,
            f"{_describe(left)} [{left_unit.name}] {verb} "
            f"{_describe(right)} [{right_unit.name}]",
        )

    def _keywords(self, out: List[Violation], src: SourceFile, call: ast.Call) -> None:
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            param_unit = unit_of_name(keyword.arg)
            value_unit = unit_of_expr(keyword.value)
            if param_unit is None or value_unit is None:
                continue
            if param_unit.compatible(value_unit):
                continue
            self.emit(
                out,
                src,
                "units-mismatch",
                keyword.value,
                f"argument {keyword.arg!r} [{param_unit.name}] bound to "
                f"{_describe(keyword.value)} [{value_unit.name}]",
            )


def _op_word(op: ast.operator) -> str:
    return "added to" if isinstance(op, ast.Add) else "subtracted from"


def _describe(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our inputs
        return "<expr>"
