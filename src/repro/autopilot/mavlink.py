"""A MAVLink-like message protocol.

The paper's drone uses MAVLink to connect the autopilot, the on-board
companion computer, and the ground station.  This is a compact functional
equivalent: framed, checksummed, sequence-numbered messages over an
in-process link with optional loss — enough to exercise the same
command/telemetry paths the real stack uses.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

MAGIC = 0xFD  # MAVLink v2 magic byte


class MessageType(enum.IntEnum):
    HEARTBEAT = 0
    SET_POSITION_TARGET = 84
    COMMAND_LONG = 76
    STATE_REPORT = 30
    BATTERY_STATUS = 147
    MISSION_ITEM = 39
    ACK = 77


class Command(enum.IntEnum):
    """COMMAND_LONG command ids (MAV_CMD subset)."""

    ARM_DISARM = 400
    TAKEOFF = 22
    LAND = 21
    RETURN_TO_LAUNCH = 20
    SET_MODE = 176


#: ACK payload result codes (MAV_RESULT subset).
ACK_ACCEPTED = 0.0
ACK_FAILED = 4.0


@dataclass(frozen=True)
class Message:
    """One protocol message."""

    message_type: MessageType
    payload: Tuple[float, ...] = ()
    sequence: int = 0

    def encode(self) -> bytes:
        """Frame: magic, type, seq, count, float payload, checksum."""
        body = struct.pack(
            f"<BBHB{len(self.payload)}f",
            MAGIC,
            int(self.message_type),
            self.sequence & 0xFFFF,
            len(self.payload),
            *self.payload,
        )
        return body + struct.pack("<H", _checksum(body))


def _checksum(data: bytes) -> int:
    """X.25-style CRC-16 (the accumulation MAVLink uses)."""
    crc = 0xFFFF
    for byte in data:
        tmp = byte ^ (crc & 0xFF)
        tmp = (tmp ^ (tmp << 4)) & 0xFF
        crc = ((crc >> 8) ^ (tmp << 8) ^ (tmp << 3) ^ (tmp >> 4)) & 0xFFFF
    return crc


class FrameError(ValueError):
    """Raised on malformed or corrupted frames."""


def decode(frame: bytes) -> Message:
    """Parse and checksum-verify one frame."""
    if len(frame) < 7:
        raise FrameError(f"frame too short: {len(frame)} bytes")
    body, received_crc = frame[:-2], struct.unpack("<H", frame[-2:])[0]
    if _checksum(body) != received_crc:
        raise FrameError("checksum mismatch")
    magic, message_type, sequence, count = struct.unpack("<BBHB", body[:5])
    if magic != MAGIC:
        raise FrameError(f"bad magic byte: {magic:#x}")
    expected = 5 + 4 * count
    if len(body) != expected:
        raise FrameError(f"payload length mismatch: {len(body)} vs {expected}")
    payload = struct.unpack(f"<{count}f", body[5:]) if count else ()
    return Message(
        message_type=MessageType(message_type),
        payload=payload,
        sequence=sequence,
    )


@dataclass
class GilbertElliott:
    """Two-state Markov burst-loss channel (Gilbert–Elliott).

    Real radio links lose frames in bursts (fades, interference), not
    independently.  The channel sits in a GOOD or BAD state, transitions
    with fixed per-frame probabilities, and drops frames at a state-dependent
    rate.  ``loss_bad=1.0, loss_good=0.0`` gives clean bursty outages; equal
    loss rates degenerate to the i.i.d. model.
    """

    p_good_to_bad: float = 0.02
    p_bad_to_good: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 0.9
    in_bad: bool = False

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def step(self, rng: np.random.Generator) -> bool:
        """Advance one frame; return True if that frame is lost."""
        if self.in_bad:
            if rng.random() < self.p_bad_to_good:
                self.in_bad = False
        elif rng.random() < self.p_good_to_bad:
            self.in_bad = True
        loss = self.loss_bad if self.in_bad else self.loss_good
        return bool(rng.random() < loss)

    @property
    def steady_state_loss(self) -> float:
        """Long-run average loss rate of the channel."""
        total = self.p_good_to_bad + self.p_bad_to_good
        if total == 0.0:
            return self.loss_bad if self.in_bad else self.loss_good
        bad_fraction = self.p_good_to_bad / total
        return bad_fraction * self.loss_bad + (1.0 - bad_fraction) * self.loss_good


@dataclass
class Link:
    """An in-process unreliable link carrying framed messages.

    Loss follows either the i.i.d. ``loss_probability`` (the backward-
    compatible default) or, when ``burst_model`` is set, a Gilbert–Elliott
    burst channel.  With ``latency_s``/``jitter_s`` set, frames become
    receivable only after their delivery time relative to the link clock
    (``advance_to``); the default zero-latency link delivers immediately.
    Setting ``blackout`` drops every frame — the total-outage fault.
    """

    loss_probability: float = 0.0
    seed: int = 9
    burst_model: Optional[GilbertElliott] = None
    latency_s: float = 0.0
    jitter_s: float = 0.0
    blackout: bool = False
    time_s: float = field(default=0.0)
    sent: int = field(default=0)
    delivered: int = field(default=0)
    dropped: int = field(default=0)
    _queue: List[Tuple[float, bytes]] = field(default_factory=list)
    _sequence: int = field(default=0)
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1): {self.loss_probability}"
            )
        if self.latency_s < 0 or self.jitter_s < 0:
            raise ValueError("latency and jitter cannot be negative")
        if self._rng is None:
            self._rng = np.random.default_rng(self.seed)

    @property
    def next_sequence(self) -> int:
        """Sequence number the next ``send`` will stamp (for ACK matching)."""
        return self._sequence

    def advance_to(self, time_s: float) -> None:
        """Move the link clock forward (never backward)."""
        self.time_s = max(self.time_s, time_s)

    def _lost(self) -> bool:
        assert self._rng is not None  # seeded in __post_init__
        if self.blackout:
            return True
        if self.burst_model is not None:
            return self.burst_model.step(self._rng)
        return bool(self._rng.random() < self.loss_probability)

    def send(self, message_type: MessageType, payload: Tuple[float, ...] = ()) -> None:
        """Frame and transmit; the link may drop or delay it."""
        message = Message(
            message_type=message_type, payload=payload, sequence=self._sequence
        )
        self._sequence += 1
        self.sent += 1
        if self._lost():
            self.dropped += 1
            return
        delivery_s = self.time_s + self.latency_s
        if self.jitter_s > 0.0:
            assert self._rng is not None  # seeded in __post_init__
            delivery_s += float(self._rng.uniform(0.0, self.jitter_s))
        self._queue.append((delivery_s, message.encode()))
        self.delivered += 1

    def receive(self) -> Optional[Message]:
        """Pop and decode the next deliverable frame, or None when idle."""
        if not self._queue:
            return None
        delivery_s, frame = self._queue[0]
        if delivery_s > self.time_s + 1e-12:
            return None  # still in flight
        self._queue.pop(0)
        return decode(frame)

    def drain(self) -> List[Message]:
        """Receive everything deliverable."""
        messages = []
        while True:
            message = self.receive()
            if message is None:
                return messages
            messages.append(message)
