"""Shared benchmark fixtures.

Heavy artifacts (the eleven-sequence SLAM study, the Figure 10 sweeps, the
interference study) are computed once per benchmark session.
"""

from __future__ import annotations

import pytest

from repro.components.catalog import cached_catalog
from repro.core.explorer import sweep_wheelbase
from repro.platforms.perf import run_interference_study
from repro.slam.dataset import all_sequence_names
from repro.slam.pipeline import run_slam

#: Frames per sequence for the benchmark SLAM runs.  Full sequences take
#: minutes in pure Python; 80 frames preserves every stage's cost structure.
BENCH_SLAM_FRAMES = 80


@pytest.fixture(scope="session")
def catalog():
    return cached_catalog()


@pytest.fixture(scope="session")
def slam_results():
    """Pipeline runs over all eleven EuRoC-like sequences."""
    return [
        run_slam(name, max_frames=BENCH_SLAM_FRAMES)
        for name in all_sequence_names()
    ]


@pytest.fixture(scope="session")
def sweeps():
    """Figure 10 sweeps for the three wheelbase classes."""
    return {wb: sweep_wheelbase(wb) for wb in (100.0, 450.0, 800.0)}


@pytest.fixture(scope="session")
def interference():
    return run_interference_study(trace_length=60_000)


def print_table(title: str, headers, rows) -> None:
    """Uniform table printer for every benchmark's paper-style output."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
