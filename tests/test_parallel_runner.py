"""Tests for the opt-in parallel sweep runner and the keyed caches.

The runner's contract is determinism: chunking depends only on input order
and config, results come back in input order, and the inline fallback is a
plain serial loop.  The parallel path is forced with ``max_workers=2`` so
the tests exercise real worker processes even on single-CPU runners.
"""

import pytest

from repro.components.catalog import (
    cached_catalog,
    clear_catalog_cache,
)
from repro.core.parallel import (
    ParallelSweepRunner,
    SweepRunnerConfig,
    chunk_items,
)
from repro.core.tradeoffs import catalog_fits, clear_fit_cache


def _square(value: int) -> int:
    """Module-level so worker processes can unpickle it."""
    return value * value


def _raise_on_three(value: int) -> int:
    if value == 3:
        raise ValueError("three is right out")
    return value


class TestChunking:
    def test_contiguous_fixed_size_chunks(self):
        assert chunk_items([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_single_chunk_when_oversized(self):
        assert chunk_items([1, 2], 10) == [[1, 2]]

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            chunk_items([1], 0)


class TestConfig:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            SweepRunnerConfig(max_workers=0)

    def test_resolved_workers_defaults_to_cpu_count(self):
        assert SweepRunnerConfig().resolved_workers >= 1

    def test_explicit_worker_count_respected(self):
        assert SweepRunnerConfig(max_workers=3).resolved_workers == 3

    def test_supervision_off_by_default(self):
        config = SweepRunnerConfig()
        assert config.supervised is False
        assert config.policy is None


class TestRunnerInline:
    def test_serial_when_parallel_disabled(self):
        runner = ParallelSweepRunner(SweepRunnerConfig(parallel=False))
        assert runner.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_serial_when_single_worker(self):
        runner = ParallelSweepRunner(SweepRunnerConfig(max_workers=1))
        assert runner.map(_square, range(4)) == [0, 1, 4, 9]

    def test_empty_items(self):
        assert ParallelSweepRunner().map(_square, []) == []

    def test_exception_propagates(self):
        runner = ParallelSweepRunner(SweepRunnerConfig(parallel=False))
        with pytest.raises(ValueError, match="three"):
            runner.map(_raise_on_three, [1, 2, 3])

    def test_exception_names_failing_item(self):
        runner = ParallelSweepRunner(SweepRunnerConfig(parallel=False))
        with pytest.raises(ValueError) as excinfo:
            runner.map(_raise_on_three, [9, 3, 1])
        assert excinfo.value.sweep_item_index == 1


class TestRunnerParallel:
    """Force two real worker processes regardless of host CPU count."""

    def test_results_in_input_order(self):
        runner = ParallelSweepRunner(
            SweepRunnerConfig(max_workers=2, chunk_size=3)
        )
        values = list(range(10))
        assert runner.map(_square, values) == [v * v for v in values]

    def test_chunk_size_one(self):
        runner = ParallelSweepRunner(
            SweepRunnerConfig(max_workers=2, chunk_size=1)
        )
        assert runner.map(_square, [5, 6, 7]) == [25, 36, 49]

    def test_worker_exception_propagates(self):
        runner = ParallelSweepRunner(
            SweepRunnerConfig(max_workers=2, chunk_size=2)
        )
        with pytest.raises(ValueError, match="three"):
            runner.map(_raise_on_three, [1, 2, 3, 4])

    def test_worker_exception_names_failing_item(self):
        runner = ParallelSweepRunner(
            SweepRunnerConfig(max_workers=2, chunk_size=2)
        )
        with pytest.raises(ValueError, match="three") as excinfo:
            runner.map(_raise_on_three, [1, 2, 3, 4])
        assert excinfo.value.sweep_item_index == 2


class TestRunnerSupervised:
    """``supervised=True`` routes through the fault-tolerant layer."""

    def test_results_match_serial(self):
        runner = ParallelSweepRunner(
            SweepRunnerConfig(parallel=False, supervised=True, chunk_size=2)
        )
        values = list(range(7))
        assert runner.map(_square, values) == [v * v for v in values]
        assert runner.last_report is not None
        assert runner.last_report.chunks_completed == 4

    def test_last_report_reset_between_maps(self):
        runner = ParallelSweepRunner(SweepRunnerConfig(parallel=False))
        runner.last_report = object()
        runner.map(_square, [1])
        assert runner.last_report is None


class TestKeyedCaches:
    def test_cached_catalog_returns_same_object(self):
        clear_catalog_cache()
        first = cached_catalog()
        second = cached_catalog()
        assert first is second
        clear_catalog_cache()
        assert cached_catalog() is not first

    def test_cached_catalog_keyed_by_seed(self):
        clear_catalog_cache()
        assert cached_catalog(seed=1) is not cached_catalog(seed=2)
        assert cached_catalog(seed=1) is cached_catalog(seed=1)

    def test_catalog_fits_memoized_and_keyed(self):
        clear_fit_cache()
        first = catalog_fits()
        assert catalog_fits() is first
        assert catalog_fits(seed=123) is not first
        clear_fit_cache()
        assert catalog_fits() is not first

    def test_catalog_fits_carries_all_fit_families(self):
        fits = catalog_fits()
        assert fits.battery, "expected per-cell-count battery fits"
        assert fits.esc, "expected per-class ESC fits"
        assert fits.frame.slope != 0.0
