"""Batch trace engine: vectorized decode + ordered-structure LRU simulation.

The scalar :class:`InOrderCore` path walks every memory access and branch
through dict-of-stamps caches — five dict operations and a ``min()`` scan per
miss.  This engine executes the same segments in three stages:

1. **Vectorized decode (NumPy).**  Per segment: kind masks via a lookup
   table, line/page extraction via shifts, and *exact run compression* —
   consecutive accesses to the same cache line are guaranteed L1 hits at MRU
   position (the next-line prefetch of line ``t`` lands in set ``t+1 mod S``,
   never ``t``'s own set, for S > 1), so their LRU refreshes are no-ops and
   they can be dropped from the sequential stream.  Same-page runs are
   dropped from the TLB stream for the same reason.  Gshare indices are
   precomputed for a whole segment at once: the global history before branch
   ``i`` is a windowed dot product of earlier taken bits, i.e. one
   ``np.convolve`` with weights ``2^0..2^(H-1)``.

2. **Ordered-structure LRU kernels (tight Python loops).**  LRU with
   timestamp dicts costs a ``min()`` scan per eviction; the batch kernels
   keep each set in *recency order* instead — a 4-slot list for L1 sets
   (membership scan of 4), an insertion-ordered dict for LLC sets and the
   TLB — making hit-refresh and evict-insert O(1).  Sets are pre-filled with
   unique negative sentinels so they are always "full": eviction needs no
   length check, and sentinels (which can never match a non-negative line)
   are naturally evicted first, reproducing the fill-before-evict behaviour
   of the scalar cache.

3. **State writeback.**  The scalar stamp dicts are rebuilt from the ordered
   structures (synthetic increasing stamps preserve relative LRU order,
   which is all the scalar ``min()`` eviction observes), stats objects and
   use counters advance by the exact scalar increments, and the predictor
   history is re-folded from the last ``history_bits`` taken bits.

Every counter — instructions, LLC accesses/misses, branches/mispredictions,
TLB accesses/misses — is integer-exact against the scalar simulator, and
cycles are bit-equal whenever ``base_cpi`` is integral (penalty sums are
exact integer adds onto a float; a fractional ``base_cpi`` makes the scalar
event-ordered float adds round differently, so cycles are then allclose).

Unsupported geometries (non-power-of-two set counts, mismatched line sizes,
an LLC with a next level, negative addresses) fall back to the scalar path
in :mod:`repro.platforms.cpu`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.markers import hot_path
from repro.platforms.workload import OpKind, Trace

#: kind -> "touches memory" lookup; indexing with the uint8 kinds array
#: replaces two equality scans.
_MEM_LUT = np.zeros(4, dtype=bool)
_MEM_LUT[int(OpKind.LOAD)] = True
_MEM_LUT[int(OpKind.STORE)] = True

_BRANCH_KIND = int(OpKind.BRANCH)

#: Dict-miss sentinel for ``pop`` (never a valid line/page, which are >= 0).
_MISSING = object()


def _is_pow2(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


def supports_batch(core) -> bool:
    """Whether the batch engine can execute this core's structures exactly.

    The kernels assume the RPi-shaped topology: an L1 (optionally with
    next-line prefetch) in front of a last-level cache with no further
    levels and no prefetcher, equal line sizes, and power-of-two set counts
    (set selection via bitmask).  Anything else runs scalar.
    """
    l1, llc = core.l1, core.llc
    return (
        l1.next_level is llc
        and llc.next_level is None
        and not llc.prefetch_next_line
        and l1.line_bytes == llc.line_bytes
        and _is_pow2(l1.line_bytes)
        and _is_pow2(l1.set_count)
        and _is_pow2(llc.set_count)
        and _is_pow2(core.tlb.page_bytes)
    )


def _ordered_lines(ways: Dict[int, int], set_index: int, set_count: int) -> List[int]:
    """A stamp-dict set's resident lines in LRU -> MRU order."""
    tags = sorted(ways, key=ways.get)
    return [tag * set_count + set_index for tag in tags]


def _build_l1_state(cache) -> List[List[int]]:
    """L1 sets as always-full recency-ordered lists (sentinels oldest)."""
    sets = []
    assoc = cache.associativity
    for set_index in range(cache.set_count):
        lines = _ordered_lines(
            cache._sets.get(set_index, {}), set_index, cache.set_count
        )
        pad = [-(slot + 1) for slot in range(assoc - len(lines))]
        sets.append(pad + lines)
    return sets


def _build_llc_state(cache) -> List[Dict[int, bool]]:
    """LLC sets as always-full insertion-ordered dicts (sentinels oldest)."""
    sets = []
    assoc = cache.associativity
    for set_index in range(cache.set_count):
        lines = _ordered_lines(
            cache._sets.get(set_index, {}), set_index, cache.set_count
        )
        ordered: Dict[int, bool] = {}
        for slot in range(assoc - len(lines)):
            ordered[-(slot + 1)] = True
        for line in lines:
            ordered[line] = True
        sets.append(ordered)
    return sets


def _build_tlb_state(tlb) -> Dict[int, bool]:
    pages = sorted(tlb._pages, key=tlb._pages.get)
    ordered: Dict[int, bool] = {}
    for slot in range(tlb.entries - len(pages)):
        ordered[-(slot + 1)] = True
    for page in pages:
        ordered[page] = True
    return ordered


def _fresh_tlb_state(entries: int) -> Dict[int, bool]:
    ordered: Dict[int, bool] = {}
    for slot in range(entries):
        ordered[-(slot + 1)] = True
    return ordered


def _writeback_cache_state(cache, sets_ordered, resident_iter) -> None:
    """Rebuild the scalar stamp dicts from ordered sets.

    Synthetic stamps increase in each set's LRU -> MRU order; only relative
    per-set order matters to the scalar ``min()`` eviction, and the running
    stamp can never exceed the (already advanced) use counter because every
    resident line consumed at least one counter increment on insertion.
    """
    new_sets: Dict[int, Dict[int, int]] = {}
    stamp = 0
    set_count = cache.set_count
    for set_index, ordered in enumerate(sets_ordered):
        ways: Dict[int, int] = {}
        for line in resident_iter(ordered):
            if line >= 0:
                stamp += 1
                ways[line // set_count] = stamp
        if ways:
            new_sets[set_index] = ways
    cache._sets = new_sets


@hot_path
def _cache_kernel(
    line_list: List[int],
    l1_sets: List[List[int]],
    llc_sets: List[Dict[int, bool]],
    l1_mask: int,
    llc_mask: int,
    prefetch: bool,
    last_demand: bool,
) -> Tuple[int, int, int, int, bool]:
    """Sequential L1+LLC walk over one segment's compressed line stream.

    Returns (l1_misses, demand_llc_misses, prefetch_llc_misses,
    prefetch_installs, last_demand_missed_below).
    """
    missing = _MISSING
    l1_miss = 0
    llc_demand_miss = 0
    llc_prefetch_miss = 0
    prefetch_installs = 0
    for line in line_list:
        ways = l1_sets[line & l1_mask]
        if line in ways:
            # Refreshing the MRU way is a no-op; hot loops hammer one line
            # per set, so this check pays for itself many times over.
            if ways[-1] != line:
                ways.remove(line)
                ways.append(line)
            continue
        l1_miss += 1
        llc_ways = llc_sets[line & llc_mask]
        if llc_ways.pop(line, missing) is missing:
            llc_demand_miss += 1
            del llc_ways[next(iter(llc_ways))]
            last_demand = True
        else:
            last_demand = False
        llc_ways[line] = True
        del ways[0]
        ways.append(line)
        if prefetch:
            next_line = line + 1
            next_ways = l1_sets[next_line & l1_mask]
            if next_line not in next_ways:
                prefetch_installs += 1
                next_llc = llc_sets[next_line & llc_mask]
                if next_llc.pop(next_line, missing) is missing:
                    llc_prefetch_miss += 1
                    del next_llc[next(iter(next_llc))]
                next_llc[next_line] = True
                del next_ways[0]
                next_ways.append(next_line)
    return l1_miss, llc_demand_miss, llc_prefetch_miss, prefetch_installs, last_demand


@hot_path
def _tlb_kernel(page_list: List[int], tlb_pages: Dict[int, bool]) -> int:
    """Fully-associative LRU walk over one segment's compressed page stream."""
    missing = _MISSING
    misses = 0
    for page in page_list:
        if tlb_pages.pop(page, missing) is missing:
            misses += 1
            del tlb_pages[next(iter(tlb_pages))]
        tlb_pages[page] = True
    return misses


@hot_path
def _branch_kernel(
    index_list: List[int], taken_list: List[bool], table: List[int]
) -> int:
    """2-bit saturating-counter updates over precomputed gshare indices."""
    misses = 0
    for index, taken in zip(index_list, taken_list):
        counter = table[index]
        if taken:
            if counter < 2:
                misses += 1
            if counter < 3:
                table[index] = counter + 1
        else:
            if counter >= 2:
                misses += 1
            if counter > 0:
                table[index] = counter - 1
    return misses


def _gshare_indices(
    pcs: np.ndarray, taken: np.ndarray, history: int, table_bits: int, history_bits: int
) -> np.ndarray:
    """Gshare table index of every branch, given the entry global history.

    The history before branch ``i`` is the last ``history_bits`` taken bits,
    newest in the LSB — a windowed dot product with weights ``2^(j-1)`` over
    the ``j``-back bit, computed for all ``i`` at once with one convolve.
    The entry history contributes ``(h << i) & mask`` to the first
    ``history_bits`` branches before its bits shift out of the window.
    """
    count = pcs.shape[0]
    table_mask = (1 << table_bits) - 1
    if history_bits == 0:
        return (pcs >> 2) & table_mask
    history_mask = (1 << history_bits) - 1
    weights = (np.int64(1) << np.arange(history_bits, dtype=np.int64))
    convolved = np.convolve(taken.astype(np.int64), weights)
    windowed = np.empty(count, dtype=np.int64)
    windowed[0] = 0
    windowed[1:] = convolved[: count - 1]
    if history:
        carry = min(count, history_bits)
        shifts = np.arange(carry, dtype=np.int64)
        windowed[:carry] |= (np.int64(history) << shifts) & history_mask
    return ((pcs >> 2) ^ (windowed & history_mask)) & table_mask


def _fold_history(taken_list: List[bool], history: int, history_bits: int) -> int:
    """The predictor's global history after a segment's branches."""
    if history_bits == 0:
        return 0
    mask = (1 << history_bits) - 1
    for taken in taken_list[-history_bits:]:
        history = ((history << 1) | taken) & mask
    return history


def run_segments_batch(core, segments: List[Tuple[str, Trace]]):
    """Execute scheduled segments on ``core`` with the batch engine.

    Counter-exact (and structure-state-exact up to equivalent LRU stamps)
    replacement for the scalar segment loop.  Falls back to the caller's
    scalar path by returning ``None`` when any segment carries negative
    addresses or PCs — the scalar loop owns the mid-segment raise semantics.
    """
    penalties = core.penalties
    l1, llc, tlb, predictor = core.l1, core.llc, core.tlb, core.predictor

    decoded = []
    for context, trace in segments:
        mem_mask = _MEM_LUT[trace.kinds]
        addresses = trace.addresses[mem_mask]
        branch_mask = trace.kinds == _BRANCH_KIND
        branch_pcs = trace.pcs[branch_mask]
        if (addresses.size and int(addresses.min()) < 0) or (
            branch_pcs.size and int(branch_pcs.min()) < 0
        ):
            return None
        decoded.append(
            (context, trace.length, addresses, branch_pcs, trace.taken[branch_mask])
        )

    line_shift = l1.line_bytes.bit_length() - 1
    page_shift = tlb.page_bytes.bit_length() - 1
    l1_mask = l1.set_count - 1
    llc_mask = llc.set_count - 1
    prefetch = l1.prefetch_next_line
    # Run compression drops repeat-line accesses as guaranteed MRU hits; with
    # a single L1 set the prefetch of line t lands in t's own set and the
    # repeat access's refresh is no longer a no-op, so compression is only
    # exact for multi-set L1s (or with the prefetcher off).
    compress_lines = l1.set_count > 1 or not prefetch

    l1_sets = _build_l1_state(l1)
    llc_sets = _build_llc_state(llc)
    tlb_pages = _build_tlb_state(tlb)
    history = predictor._history
    table = predictor._table
    last_demand = l1.last_demand_missed_below

    l1_access_total = 0
    l1_miss_total = 0
    llc_access_total = 0
    llc_miss_total = 0
    tlb_access_total = 0
    tlb_miss_total = 0
    branch_total = 0
    branch_miss_total = 0
    install_total = 0

    for context, instructions, addresses, branch_pcs, branch_taken in decoded:
        previous = core._current_context
        core._switch_to(context)
        if (
            context != previous
            and previous is not None
            and core.flush_on_context_switch
        ):
            # _switch_to flushed the real TLB and branch history; mirror the
            # flush in the batch state.
            tlb_pages = _fresh_tlb_state(tlb.entries)
            history = 0
        counter = core.counters[context]

        mem_count = addresses.shape[0]
        if mem_count:
            lines = addresses >> line_shift
            if compress_lines and mem_count > 1:
                keep = np.empty(mem_count, dtype=bool)
                keep[0] = True
                np.not_equal(lines[1:], lines[:-1], out=keep[1:])
                line_list = lines[keep].tolist()
            else:
                line_list = lines.tolist()
            pages = addresses >> page_shift
            if mem_count > 1:
                keep_pages = np.empty(mem_count, dtype=bool)
                keep_pages[0] = True
                np.not_equal(pages[1:], pages[:-1], out=keep_pages[1:])
                page_list = pages[keep_pages].tolist()
            else:
                page_list = pages.tolist()
        else:
            line_list = []
            page_list = []

        tlb_misses = _tlb_kernel(page_list, tlb_pages)
        (
            l1_misses,
            llc_demand_misses,
            llc_prefetch_misses,
            installs,
            last_demand,
        ) = _cache_kernel(
            line_list, l1_sets, llc_sets, l1_mask, llc_mask, prefetch, last_demand
        )

        branch_count = branch_pcs.shape[0]
        if branch_count:
            indices = _gshare_indices(
                branch_pcs,
                branch_taken,
                history,
                predictor.table_bits,
                predictor.history_bits,
            )
            taken_list = branch_taken.tolist()
            branch_misses = _branch_kernel(indices.tolist(), taken_list, table)
            history = _fold_history(taken_list, history, predictor.history_bits)
        else:
            branch_misses = 0

        llc_accesses = l1_misses + installs
        llc_misses = llc_demand_misses + llc_prefetch_misses
        counter.instructions += instructions
        counter.cycles += instructions * penalties.base_cpi + (
            tlb_misses * penalties.tlb_miss
            + l1_misses * penalties.l1_miss_llc_hit
            + llc_demand_misses * penalties.llc_miss_dram
            + branch_misses * penalties.branch_mispredict
        )
        counter.llc_accesses += llc_accesses
        counter.llc_misses += llc_misses
        counter.branches += branch_count
        counter.branch_misses += branch_misses
        counter.tlb_accesses += mem_count
        counter.tlb_misses += tlb_misses

        l1_access_total += mem_count
        l1_miss_total += l1_misses
        llc_access_total += llc_accesses
        llc_miss_total += llc_misses
        tlb_access_total += mem_count
        tlb_miss_total += tlb_misses
        branch_total += branch_count
        branch_miss_total += branch_misses
        install_total += installs

    l1.stats.accesses += l1_access_total
    l1.stats.misses += l1_miss_total
    llc.stats.accesses += llc_access_total
    llc.stats.misses += llc_miss_total
    tlb.stats.accesses += tlb_access_total
    tlb.stats.misses += tlb_miss_total
    predictor.stats.branches += branch_total
    predictor.stats.mispredictions += branch_miss_total

    l1._use_counter += l1_access_total + install_total
    llc._use_counter += llc_access_total
    tlb._use_counter += tlb_access_total
    l1.last_demand_missed_below = last_demand
    if llc_miss_total:
        llc.last_demand_missed_below = False
    predictor._history = history

    _writeback_cache_state(l1, l1_sets, iter)
    _writeback_cache_state(llc, llc_sets, iter)
    new_pages: Dict[int, int] = {}
    stamp = 0
    for page in tlb_pages:
        if page >= 0:
            stamp += 1
            new_pages[page] = stamp
    tlb._pages = new_pages
    return core.counters
