"""Shared fixtures.

Expensive artifacts (the synthetic catalog, a SLAM run, the interference
study) are computed once per session and shared across test modules.
"""

from __future__ import annotations

import pytest

from repro.components.catalog import generate_catalog
from repro.platforms.perf import run_interference_study
from repro.slam.pipeline import run_slam


@pytest.fixture(scope="session")
def catalog():
    """The deterministic synthetic component census."""
    return generate_catalog()


@pytest.fixture(scope="session")
def slam_mh01():
    """A short MH01 pipeline run shared by SLAM and platform tests."""
    return run_slam("MH01", max_frames=60)


@pytest.fixture(scope="session")
def interference():
    """A reduced-size Figure 15 interference study.

    40k instructions is the shortest steady-state length at which the LLC
    eviction effect is reliably visible above the warmup residue.
    """
    return run_interference_study(trace_length=40_000)
