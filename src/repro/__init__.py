"""repro — reproduction of "Quantifying the Design-Space Tradeoffs in
Autonomous Drones" (Hadidi et al., ASPLOS 2021).

Subpackages
-----------
core
    The paper's contribution: Equations 1-7, design-point evaluation,
    design-space sweeps, fit re-derivation, validation, and the Figure 12
    wizard.
components
    Synthetic commercial-component census (batteries, ESCs, frames, motors,
    propellers, boards, sensors) and the commercial-drone database.
physics
    Propulsion/airframe physics: momentum-theory propellers, BLDC motors,
    LiPo packs, 6-DOF rigid body, environment.
control
    Inner-/outer-loop control stack: PIDs, hierarchical cascade with
    time-scale separation, EKF state estimation, motor mixer.
sensors
    On-board sensor models at Table 2 data rates (IMU, barometer, GPS,
    magnetometer).
sim
    Multirate flight simulator, missions, power tracing, telemetry.
slam
    Feature-based SLAM pipeline (tracking + local/global bundle adjustment)
    on synthetic EuRoC-like sequences.
platforms
    Trace-driven microarchitecture simulation (caches, TLB, branch
    predictor, in-order core) and accelerator/power models of RPi4, Jetson
    TX2, FPGA, and ASIC platforms.
autopilot
    ArduCopter-like autopilot, DroneKit-like API, MAVLink-like transport.
reference
    The paper's open-source reference drone build (Figure 14).
"""

__version__ = "1.0.0"

PAPER_TITLE = "Quantifying the Design-Space Tradeoffs in Autonomous Drones"
PAPER_VENUE = "ASPLOS 2021"
PAPER_DOI = "10.1145/3445814.3446721"


def clear_all_caches() -> None:
    """Drop every module-level memo cache in the library.

    One hook for test isolation and long-lived processes: the per-wheelbase
    propeller constants, the generated component catalog, the catalog
    regression fits, the synthetic SLAM sequences, and the ensemble
    simulator's keyed scratch pool.  Imports are deferred so calling this
    never pulls in subpackages the process has not already paid for.
    """
    from repro.components.catalog import clear_catalog_cache
    from repro.core.batch import _WHEELBASE_CONSTANTS_CACHE
    from repro.core.tradeoffs import clear_fit_cache
    from repro.sim.ensemble import clear_ensemble_scratch
    from repro.slam.dataset import clear_sequence_cache

    _WHEELBASE_CONSTANTS_CACHE.clear()
    clear_catalog_cache()
    clear_fit_cache()
    clear_sequence_cache()
    clear_ensemble_scratch()
