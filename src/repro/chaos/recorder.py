"""Black-box flight recorder: bounded tick history + JSON crash traces.

Real flight controllers carry a black box: a ring buffer of recent state
that survives the crash and explains it.  :class:`FlightRecorder` is that
device for chaos trials — every control tick it snapshots vehicle state,
commands-in-effect, and failsafe ladder position into a ``deque`` with a
hard ``maxlen``, so a thousand-trial campaign holds memory flat and still
has the final seconds of every failure at full resolution.

On a violation or crash the runner freezes the buffer into a
:class:`BlackBoxTrace`: a JSON document carrying the trial's identity
``(campaign_seed, trial_index)``, its exact fault schedule, the verdict,
and the recorded ticks — everything the deterministic replay harness needs
to re-fly the trial bit-for-bit from the trace file alone.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.autopilot.arducopter import Autopilot
from repro.chaos.invariants import Violation
from repro.faults.schedule import FaultSchedule

#: Black-box trace format version (bump on incompatible schema changes).
TRACE_FORMAT = 1


def _vec3(values: Any) -> Tuple[float, float, float]:
    return (float(values[0]), float(values[1]), float(values[2]))


@dataclass(frozen=True)
class TickRecord:
    """One control tick of black-box state."""

    time_s: float
    position_m: Tuple[float, float, float]
    velocity_m_s: Tuple[float, float, float]
    euler_rad: Tuple[float, float, float]
    battery_soc: float
    failsafe: str
    mode: str
    active_faults: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time_s": self.time_s,
            "position_m": list(self.position_m),
            "velocity_m_s": list(self.velocity_m_s),
            "euler_rad": list(self.euler_rad),
            "battery_soc": self.battery_soc,
            "failsafe": self.failsafe,
            "mode": self.mode,
            "active_faults": list(self.active_faults),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TickRecord":
        return cls(
            time_s=float(data["time_s"]),
            position_m=_vec3(data["position_m"]),
            velocity_m_s=_vec3(data["velocity_m_s"]),
            euler_rad=_vec3(data["euler_rad"]),
            battery_soc=float(data["battery_soc"]),
            failsafe=str(data["failsafe"]),
            mode=str(data["mode"]),
            active_faults=tuple(str(v) for v in data["active_faults"]),
        )


class FlightRecorder:
    """Bounded ring buffer of per-tick state snapshots."""

    def __init__(self, maxlen: int = 400):
        if maxlen <= 0:
            raise ValueError(f"recorder maxlen must be positive: {maxlen}")
        self.maxlen = maxlen
        self.ticks: Deque[TickRecord] = deque(maxlen=maxlen)
        self.total_ticks = 0

    def record(
        self,
        autopilot: Autopilot,
        active_faults: Tuple[str, ...] = (),
    ) -> TickRecord:
        """Snapshot the stack's current state into the ring buffer."""
        state = autopilot.sim.body.state
        tick = TickRecord(
            time_s=autopilot.sim.time_s,
            position_m=(
                float(state.position_m[0]),
                float(state.position_m[1]),
                float(state.position_m[2]),
            ),
            velocity_m_s=(
                float(state.velocity_m_s[0]),
                float(state.velocity_m_s[1]),
                float(state.velocity_m_s[2]),
            ),
            euler_rad=(
                float(state.euler_rad[0]),
                float(state.euler_rad[1]),
                float(state.euler_rad[2]),
            ),
            battery_soc=autopilot.sim.battery.state_of_charge,
            failsafe=autopilot.failsafe.name,
            mode=autopilot.mode.value,
            active_faults=active_faults,
        )
        self.ticks.append(tick)
        self.total_ticks += 1
        return tick

    @property
    def dropped_ticks(self) -> int:
        """Ticks that have rolled out of the ring buffer."""
        return self.total_ticks - len(self.ticks)


@dataclass
class BlackBoxTrace:
    """A dumped black box: trial identity + schedule + verdict + ticks."""

    campaign_seed: int
    trial_index: int
    link_seed: int
    verdict: str
    schedule: FaultSchedule
    violation: Optional[Violation] = None
    events: Tuple[Tuple[float, str], ...] = ()
    ticks: List[TickRecord] = field(default_factory=list)
    dropped_ticks: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": TRACE_FORMAT,
            "campaign_seed": self.campaign_seed,
            "trial_index": self.trial_index,
            "link_seed": self.link_seed,
            "verdict": self.verdict,
            "schedule": self.schedule.to_jsonable(),
            "violation": (
                None if self.violation is None else self.violation.to_dict()
            ),
            "events": [[time_s, text] for time_s, text in self.events],
            "dropped_ticks": self.dropped_ticks,
            "ticks": [tick.to_dict() for tick in self.ticks],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BlackBoxTrace":
        if int(data.get("format", TRACE_FORMAT)) != TRACE_FORMAT:
            raise ValueError(f"unsupported trace format: {data.get('format')}")
        violation = data.get("violation")
        return cls(
            campaign_seed=int(data["campaign_seed"]),
            trial_index=int(data["trial_index"]),
            link_seed=int(data["link_seed"]),
            verdict=str(data["verdict"]),
            schedule=FaultSchedule.from_jsonable(data["schedule"]),
            violation=None if violation is None else Violation.from_dict(violation),
            events=tuple(
                (float(time_s), str(text)) for time_s, text in data.get("events", [])
            ),
            ticks=[TickRecord.from_dict(item) for item in data.get("ticks", [])],
            dropped_ticks=int(data.get("dropped_ticks", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "BlackBoxTrace":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> Tuple:
        """Bit-for-bit comparison key used by the replay determinism check."""
        return (
            self.campaign_seed,
            self.trial_index,
            self.link_seed,
            self.verdict,
            tuple(self.schedule.events),
            self.violation,
            self.events,
            tuple(self.ticks),
            self.dropped_ticks,
        )
