"""Motor mixer: collective thrust + body torques -> four rotor thrusts.

Inverts the X-configuration wrench map of
:meth:`repro.physics.rigid_body.QuadcopterBody.wrench_from_motor_thrusts`;
the low-level thrust controller (Table 2's 1 kHz loop) calls this every
update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.markers import hot_path

# Must match the layout in repro.physics.rigid_body.
_ROTOR_ANGLES = np.deg2rad([45.0, 225.0, 135.0, 315.0])
_ROTOR_SPIN = np.array([1.0, 1.0, -1.0, -1.0])


@dataclass
class MotorMixer:
    """Allocates a desired wrench across the four rotors.

    ``motor_health`` scales each rotor's thrust ceiling in [0, 1]: 1 is a
    healthy motor, fractions model ESC thermal throttling or a degraded
    motor/prop, and 0 is a dead rotor.  The fault-injection framework writes
    it; nominal flight never touches it.
    """

    #: Never shed more than half the commanded collective while desaturating:
    #: below that the airframe falls faster than attitude recovery helps.
    MIN_COLLECTIVE_SCALE = 0.5

    arm_length_m: float
    torque_thrust_ratio_m: float = 0.016
    max_thrust_per_motor_n: float = 10.0
    motor_health: Optional[np.ndarray] = None
    #: Allocation statistics: total mixes and how many hit a thrust ceiling.
    #: The autopilot's thrust-saturation failsafe watches the ratio.
    mixes: int = 0
    saturations: int = 0

    def __post_init__(self) -> None:
        if self.arm_length_m <= 0:
            raise ValueError(f"arm length must be positive, got {self.arm_length_m}")
        if self.torque_thrust_ratio_m <= 0:
            raise ValueError("torque/thrust ratio must be positive")
        if self.max_thrust_per_motor_n <= 0:
            raise ValueError("max thrust must be positive")
        if self.motor_health is None:
            self.motor_health = np.ones(4)
        self.motor_health = np.asarray(self.motor_health, dtype=float)
        if self.motor_health.shape != (4,):
            raise ValueError("motor health must be a 4-vector")
        if np.any(self.motor_health < 0.0) or np.any(self.motor_health > 1.0):
            raise ValueError("motor health factors must be in [0, 1]")
        arm_x = self.arm_length_m * np.cos(_ROTOR_ANGLES)
        arm_y = self.arm_length_m * np.sin(_ROTOR_ANGLES)
        # Rows: total thrust, roll torque, pitch torque, yaw torque.
        mixing = np.vstack(
            [
                np.ones(4),
                arm_y,
                -arm_x,
                _ROTOR_SPIN * self.torque_thrust_ratio_m,
            ]
        )
        self._inverse = np.linalg.inv(mixing)

    @hot_path
    def mix(
        self,
        total_thrust_n: float,
        torque_nm: np.ndarray,
    ) -> np.ndarray:
        """Per-motor thrusts (N) for a desired collective thrust and torque.

        Commands are clipped to [0, max]; when saturated, yaw torque is shed
        first and then collective thrust is scaled down so roll/pitch
        authority survives, mirroring real attitude-priority mixers.
        """
        if total_thrust_n < 0:
            raise ValueError(f"thrust cannot be negative, got {total_thrust_n}")
        torque = np.asarray(torque_nm, dtype=float)
        if torque.shape != (3,):
            raise ValueError(f"torque must be a 3-vector, got shape {torque.shape}")
        wrench = np.concatenate([[total_thrust_n], torque])
        ceilings = self.max_thrust_per_motor_n * self.motor_health
        thrusts = self._inverse @ wrench
        if np.any(thrusts < 0.0) or np.any(thrusts > ceilings):
            # Desaturate with attitude priority (what real mixers do): shed
            # yaw first, then scale collective down until the roll/pitch
            # torque fits inside the per-motor ceilings.  Losing a little
            # altitude is recoverable; losing attitude authority flips the
            # airframe.
            wrench_no_yaw = wrench.copy()
            wrench_no_yaw[3] *= 0.25
            torque_part = self._inverse @ np.concatenate([[0.0], wrench_no_yaw[1:]])
            collective_part = self._inverse[:, 0] * total_thrust_n
            scale = 1.0
            for torque_i, collective_i, ceiling_i in zip(
                torque_part, collective_part, ceilings
            ):
                if collective_i > 1e-12:
                    scale = min(scale, (ceiling_i - torque_i) / collective_i)
            scale = float(np.clip(scale, self.MIN_COLLECTIVE_SCALE, 1.0))
            thrusts = torque_part + scale * collective_part
        self.mixes += 1
        if np.any(thrusts > ceilings + 1e-9):
            self.saturations += 1
        return np.clip(thrusts, 0.0, ceilings)

    def set_motor_health(self, motor_index: int, factor: float) -> None:
        """Derate (or restore) one rotor's thrust ceiling."""
        if not 0 <= motor_index < 4:
            raise ValueError(f"motor index must be 0-3, got {motor_index}")
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"health factor must be in [0, 1], got {factor}")
        self.motor_health[motor_index] = factor
