"""Tests: SLAM-aided GPS-denied navigation and mission energy budgeting."""

import numpy as np
import pytest

from repro.sim.missions import (
    MissionPhase,
    PhaseKind,
    estimate_mission_energy,
    figure16_mission,
    hover_mission,
    waypoint_mission,
)
from repro.sim.simulator import DroneModel, FlightSimulator


def model_450(capacity_mah: float = 3000.0) -> DroneModel:
    return DroneModel(
        mass_kg=1.071, wheelbase_mm=450.0, battery_cells=3,
        battery_capacity_mah=capacity_mah,
    )


class TestSlamAidedNavigation:
    def _fly_gps_denied(self, with_fixes: bool) -> float:
        """Return final horizontal EKF error after a GPS-denied flight."""
        sim = FlightSimulator(model_450(), physics_rate_hz=400.0, use_ekf=True)
        sim.sensors.gps.available = False
        sim.goto([0.0, 0.0, 4.0])
        rng = np.random.default_rng(2)
        for _ in range(40):
            sim.run_for(0.25)
            if with_fixes:
                # A SLAM pose: truth plus centimetre noise, at ~4 Hz.
                truth = sim.body.state.position_m
                sim.inject_position_fix(
                    truth + rng.normal(0.0, 0.03, 3), noise_m=0.05
                )
        error = np.linalg.norm(
            sim.ekf.position_m[0:2] - sim.body.state.position_m[0:2]
        )
        return float(error)

    def test_slam_fixes_bound_the_drift(self):
        drift_without = self._fly_gps_denied(with_fixes=False)
        drift_with = self._fly_gps_denied(with_fixes=True)
        assert drift_with < 0.25
        assert drift_with < drift_without

    def test_fix_requires_ekf_mode(self):
        sim = FlightSimulator(model_450(), physics_rate_hz=400.0, use_ekf=False)
        with pytest.raises(RuntimeError):
            sim.inject_position_fix(np.zeros(3))

    def test_fix_noise_validation(self):
        sim = FlightSimulator(model_450(), physics_rate_hz=400.0, use_ekf=True)
        with pytest.raises(ValueError):
            sim.inject_position_fix(np.zeros(3), noise_m=0.0)


class TestMissionEnergy:
    def test_short_hover_feasible(self):
        estimate = estimate_mission_energy(
            hover_mission(duration_s=60.0), model_450()
        )
        assert estimate.feasible
        assert estimate.reserve_fraction > 0.5

    def test_marathon_mission_infeasible(self):
        long_hover = hover_mission(duration_s=3600.0)
        estimate = estimate_mission_energy(long_hover, model_450())
        assert not estimate.feasible

    def test_bigger_battery_more_reserve(self):
        mission = waypoint_mission([[5.0, 0.0, 5.0]], leg_duration_s=10.0)
        small = estimate_mission_energy(mission, model_450(2000.0))
        large = estimate_mission_energy(mission, model_450(5000.0))
        assert large.reserve_fraction > small.reserve_fraction

    def test_maneuvering_costs_more(self):
        calm = hover_mission(duration_s=20.0)
        from repro.sim.missions import Mission

        aggressive = Mission(phases=[
            MissionPhase(PhaseKind.TAKEOFF, duration_s=6.0,
                         target_m=np.array([0.0, 0.0, 5.0])),
            MissionPhase(PhaseKind.AGGRESSIVE, duration_s=20.0,
                         target_m=np.array([0.0, 0.0, 5.0])),
        ])
        model = model_450()
        assert (
            estimate_mission_energy(aggressive, model).required_wh
            > estimate_mission_energy(calm, model).required_wh
        )

    def test_estimate_matches_simulated_drain(self):
        """The pre-flight estimate lands near the simulator's actual usage."""
        mission = figure16_mission()
        model = model_450()
        estimate = estimate_mission_energy(mission, model)
        sim = FlightSimulator(model, physics_rate_hz=400.0)
        mission.run(sim)
        from repro.physics import constants

        used_wh = (
            sim.battery.used_mah / 1000.0
            * model.battery_cells * constants.LIPO_CELL_NOMINAL_V
        )
        assert estimate.required_wh == pytest.approx(used_wh, rel=0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_mission_energy(
                hover_mission(), model_450(), maneuver_multiplier=0.5
            )
