"""Figure 8: (a) ESC max-current vs weight per flight class;
(b) frame wheelbase vs weight."""

import pytest

from repro.components.esc import FIG8A_WEIGHT_FITS, EscClass
from repro.components.frame import FIG8B_LARGE_FIT
from repro.core.tradeoffs import compare_esc_fits, fit_frame_weight

from conftest import print_table


def test_fig08a_esc_weight_fits(benchmark, catalog):
    comparisons = benchmark.pedantic(
        compare_esc_fits, args=(catalog,), rounds=3, iterations=1
    )
    rows = [
        (
            c.label,
            f"y = {c.recovered.slope:.3f}x + {c.recovered.intercept:.1f}",
            f"y = {c.published.slope:.4f}x + {c.published.intercept:.3f}",
            f"{c.slope_error:.1%}",
        )
        for c in comparisons
    ]
    print_table(
        "Figure 8a — ESC max continuous current vs 4x-ESC weight",
        ("class", "recovered fit", "paper fit", "slope err"),
        rows,
    )
    by_class = {c.label: c for c in comparisons}
    assert by_class["long_flight"].recovered.slope > by_class[
        "short_flight"
    ].recovered.slope
    for comparison in comparisons:
        assert comparison.slope_error < 0.25
    assert FIG8A_WEIGHT_FITS[EscClass.LONG_FLIGHT].slope == pytest.approx(4.9678)


def test_fig08b_frame_weight_fit(benchmark, catalog):
    fit = benchmark.pedantic(
        fit_frame_weight, args=(catalog.frames,), rounds=3, iterations=1
    )
    print_table(
        "Figure 8b — frame wheelbase vs weight (wheelbase > 200 mm)",
        ("recovered fit", "paper fit", "R^2"),
        [
            (
                f"y = {fit.slope:.3f}x + {fit.intercept:.1f}",
                f"y = {FIG8B_LARGE_FIT.slope}x + {FIG8B_LARGE_FIT.intercept}",
                f"{fit.r_squared:.3f}",
            )
        ],
    )
    assert fit.slope == pytest.approx(FIG8B_LARGE_FIT.slope, rel=0.15)
    assert fit.r_squared > 0.9
