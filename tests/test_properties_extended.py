"""Second round of property-based tests: planning, weight closure, dataset
geometry, and predictor convergence."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.equations import InfeasibleDesignError, close_weight
from repro.platforms.branch import GsharePredictor
from repro.slam.dataset import CameraModel
from repro.slam.planning import (
    OccupancyGrid,
    PlanningError,
    plan_path,
)


class TestPlanningProperties:
    @given(
        start_col=st.integers(0, 14),
        start_row=st.integers(0, 14),
        goal_col=st.integers(0, 14),
        goal_row=st.integers(0, 14),
    )
    @settings(max_examples=40, deadline=None)
    def test_path_at_least_straight_line(self, start_col, start_row,
                                         goal_col, goal_row):
        assume((start_col, start_row) != (goal_col, goal_row))
        grid = OccupancyGrid(
            origin_m=np.zeros(3), resolution_m=1.0, width=15, height=15,
        )
        start = np.append(grid.center_of(start_row, start_col), 0.0)
        goal = np.append(grid.center_of(goal_row, goal_col), 0.0)
        plan = plan_path(grid, start, goal)
        euclidean = float(np.linalg.norm(goal[0:2] - start[0:2]))
        assert plan.path_length_m >= euclidean - 1.5  # grid discretization

    @given(
        obstacles=st.lists(
            st.tuples(st.integers(1, 13), st.integers(1, 13)),
            min_size=0, max_size=25, unique=True,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_plans_never_cross_obstacles(self, obstacles):
        grid = OccupancyGrid(
            origin_m=np.zeros(3), resolution_m=1.0, width=15, height=15,
        )
        for row, col in obstacles:
            grid.occupied[row, col] = True
        assume(grid.is_free(0, 0) and grid.is_free(14, 14))
        start = np.append(grid.center_of(0, 0), 0.0)
        goal = np.append(grid.center_of(14, 14), 0.0)
        try:
            plan = plan_path(grid, start, goal)
        except PlanningError:
            return  # fully blocked is a legal outcome
        for waypoint in plan.waypoints_m:
            row, col = grid.cell_of(waypoint)
            assert grid.is_free(row, col)


class TestWeightClosureProperties:
    @given(
        capacity=st.floats(1000.0, 8000.0),
        payload=st.floats(0.0, 400.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_total_weight_monotone_in_payload(self, capacity, payload):
        base = close_weight(450.0, 3, capacity)
        loaded = close_weight(450.0, 3, capacity, payload_g=payload)
        assert loaded.total_g >= base.total_g
        # The closure amplifies payload: total grows by MORE than the
        # payload itself (motors/ESCs grow too).
        if payload > 1.0:
            assert loaded.total_g - base.total_g > payload

    @given(capacity=st.floats(1000.0, 8000.0))
    @settings(max_examples=30, deadline=None)
    def test_breakdown_parts_nonnegative(self, capacity):
        try:
            breakdown = close_weight(450.0, 6, capacity)
        except InfeasibleDesignError:
            return
        for name, value in breakdown.as_dict().items():
            assert value >= 0.0, name


class TestCameraProperties:
    @given(
        x=st.floats(-3.0, 3.0),
        y=st.floats(-2.0, 2.0),
        z=st.floats(0.5, 10.0),
    )
    def test_projection_depth_invariance_of_center_ray(self, x, y, z):
        camera = CameraModel()
        u, v = camera.project(np.array([x, y, z]))
        # Scaling the point along the ray leaves the pixel unchanged.
        u2, v2 = camera.project(np.array([2 * x, 2 * y, 2 * z]))
        assert u == pytest.approx(u2, abs=1e-9)
        assert v == pytest.approx(v2, abs=1e-9)

    @given(z=st.floats(0.1, 50.0))
    def test_optical_axis_maps_to_principal_point(self, z):
        camera = CameraModel()
        u, v = camera.project(np.array([0.0, 0.0, z]))
        assert u == pytest.approx(camera.cx)
        assert v == pytest.approx(camera.cy)


class TestPredictorProperties:
    @given(bias=st.floats(0.85, 1.0), pc=st.integers(0, 1 << 16))
    @settings(max_examples=25, deadline=None)
    def test_biased_branches_learned_below_bias_error(self, bias, pc):
        predictor = GsharePredictor()
        rng = np.random.default_rng(abs(pc) % 1000)
        misses = 0
        trials = 600
        for _ in range(trials):
            taken = bool(rng.random() < bias)
            if not predictor.predict_and_update(pc * 4, taken):
                misses += 1
        # A 2-bit counter tracks the majority: the miss rate approaches the
        # minority probability.
        assert misses / trials < (1.0 - bias) + 0.12
