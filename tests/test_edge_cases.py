"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro.autopilot.arducopter import Autopilot, FlightMode
from repro.autopilot.mavlink import Command, Link, MessageType
from repro.autopilot.offload import evaluate_offload
from repro.components.base import Component, ComponentFamily
from repro.components.battery import make_battery
from repro.core.explorer import SweepResult
from repro.core.metrics import FlightTimeEstimate
from repro.platforms.profiles import PlatformProfile, rpi4_profile
from repro.sim.clock import MultirateScheduler
from repro.sim.simulator import DroneModel, FlightSimulator
from repro.slam.dataset import load_sequence
from repro.slam.map import SlamMap
from repro.slam.pipeline import SlamPipeline, Stage


class TestComponentBase:
    def test_component_validation(self):
        with pytest.raises(ValueError):
            Component(name="", manufacturer="m", weight_g=1.0)
        with pytest.raises(ValueError):
            Component(name="x", manufacturer="m", weight_g=-1.0)

    def test_component_family_collection(self):
        family = ComponentFamily()
        family.add(make_battery(3, 1000.0, manufacturer="A"))
        family.extend([
            make_battery(3, 2000.0, manufacturer="A"),
            make_battery(4, 2000.0, manufacturer="B"),
        ])
        assert len(family) == 3
        assert family.manufacturers() == {"A": 2, "B": 1}
        assert len(list(iter(family))) == 3


class TestBatteryDepletionInFlight:
    def test_depletion_triggers_failsafe_landing(self):
        """Failure injection: near-empty battery mid-flight -> LAND."""
        model = DroneModel(
            mass_kg=1.071, wheelbase_mm=450.0, battery_cells=3,
            battery_capacity_mah=3000.0,
        )
        autopilot = Autopilot(FlightSimulator(model, physics_rate_hz=400.0))
        autopilot.arm()
        autopilot.takeoff(4.0)
        for _ in range(40):
            autopilot.update(0.1)
        battery = autopilot.sim.battery
        battery.used_mah = battery.usable_mah - 1.0  # one mAh left
        for _ in range(30):
            autopilot.update(0.1)
        assert autopilot.failsafe_triggered
        assert autopilot.mode is FlightMode.LAND
        # And the simulator flags depletion rather than crashing.
        for _ in range(40):
            autopilot.update(0.1)
        assert autopilot.sim.depleted

    def test_simulator_survives_depleted_battery(self):
        model = DroneModel(
            mass_kg=1.0, wheelbase_mm=450.0, battery_cells=3,
            battery_capacity_mah=100.0,
        )
        sim = FlightSimulator(model, physics_rate_hz=400.0)
        sim.goto([0.0, 0.0, 3.0])
        # The C-rating caps draw at capacity*C, so a pack always lasts
        # ~0.85*3600/C s regardless of size: ~77 s at 40C.
        sim.run_for(80.0)
        assert sim.depleted


class TestGpsDeniedFlight:
    def test_ekf_flight_without_gps_drifts_but_flies(self):
        """Indoor (GPS-denied) flight: the EKF holds attitude/altitude from
        IMU+baro, horizontal position drifts — the reason SLAM exists."""
        model = DroneModel(
            mass_kg=1.071, wheelbase_mm=450.0, battery_cells=3,
            battery_capacity_mah=3000.0,
        )
        sim = FlightSimulator(model, physics_rate_hz=400.0, use_ekf=True)
        sim.sensors.gps.available = False
        sim.goto([0.0, 0.0, 4.0])
        sim.run_for(10.0)
        # Altitude held by barometer fusion...
        assert sim.body.state.position_m[2] == pytest.approx(4.0, abs=1.0)
        # ...and the vehicle did not diverge wildly.
        assert np.linalg.norm(sim.body.state.position_m[0:2]) < 5.0


class TestAutopilotProtocolEdges:
    def make(self) -> Autopilot:
        model = DroneModel(
            mass_kg=1.071, wheelbase_mm=450.0, battery_cells=3,
            battery_capacity_mah=3000.0,
        )
        return Autopilot(FlightSimulator(model, physics_rate_hz=400.0))

    def test_unknown_mode_id_raises(self):
        autopilot = self.make()
        autopilot.link.send(
            MessageType.COMMAND_LONG, (float(Command.SET_MODE), 99.0)
        )
        with pytest.raises(ValueError, match="unknown mode id"):
            autopilot.update(0.1)

    def test_position_target_ignored_when_disarmed(self):
        autopilot = self.make()
        autopilot.set_mode(FlightMode.GUIDED)
        autopilot.link.send(
            MessageType.SET_POSITION_TARGET, (5.0, 5.0, 5.0)
        )
        autopilot.update(0.5)
        assert np.linalg.norm(autopilot.sim.body.state.position_m) < 0.5

    def test_empty_command_payload_is_noop(self):
        autopilot = self.make()
        autopilot.link.send(MessageType.COMMAND_LONG, ())
        autopilot.update(0.1)  # must not raise

    def test_disarm_over_link(self):
        autopilot = self.make()
        autopilot.arm()
        autopilot.link.send(
            MessageType.COMMAND_LONG, (float(Command.ARM_DISARM), 0.0)
        )
        autopilot.update(0.1)
        assert not autopilot.armed


class TestSlamEdges:
    def test_pipeline_with_degraded_descriptors_still_tracks(self):
        """Heavy descriptor noise degrades but does not break tracking."""
        sequence = load_sequence("MH01")
        sequence.spec = type(sequence.spec)(
            name="MH01", environment="machine_hall",
            difficulty=sequence.spec.difficulty, duration_s=5.0,
            mean_speed_m_s=0.6, landmark_count=sequence.spec.landmark_count,
            pixel_noise=2.0,
        )
        pipeline = SlamPipeline(sequence)
        result = pipeline.run(max_frames=40)
        assert result.frames_processed == 40
        assert result.map_points > 20

    def test_empty_map_descriptor_matrix(self):
        descriptors, ids = SlamMap().descriptor_matrix()
        assert descriptors.shape == (0, 32)
        assert ids.size == 0

    def test_trajectory_of_empty_map_raises(self):
        with pytest.raises(ValueError):
            SlamMap().trajectory()

    def test_breakdown_rejects_negative_ops(self):
        from repro.slam.pipeline import StageBreakdown

        breakdown = StageBreakdown()
        with pytest.raises(ValueError):
            breakdown.add(Stage.TRACKING, -1)
        with pytest.raises(ValueError):
            breakdown.fraction(Stage.TRACKING)  # nothing recorded yet


class TestOffloadEdges:
    def test_total_link_loss_raises(self, slam_mh01):
        with pytest.raises(ValueError, match="no pose updates"):
            evaluate_offload(
                slam_mh01, rpi4_profile(), loss_probability=0.999999,
            )


class TestProfileValidation:
    def test_missing_stage_rejected(self):
        with pytest.raises(ValueError, match="missing stage"):
            PlatformProfile(
                name="bad",
                stage_throughput_ops_s={Stage.LOCAL_BA: 1e9},
                power_overhead_w=1.0,
                weight_overhead_g=1.0,
                integration_cost="Low",
                fabrication_cost="Low",
            )

    def test_nonpositive_throughput_rejected(self):
        throughputs = {stage: 1e9 for stage in Stage}
        throughputs[Stage.TRACKING] = 0.0
        with pytest.raises(ValueError):
            PlatformProfile(
                name="bad", stage_throughput_ops_s=throughputs,
                power_overhead_w=1.0, weight_overhead_g=1.0,
                integration_cost="Low", fabrication_cost="Low",
            )


class TestSchedulerEdges:
    def test_zero_elapsed_rates_undefined(self):
        scheduler = MultirateScheduler()
        with pytest.raises(ValueError):
            scheduler.measured_rates_hz()

    def test_find_task(self):
        scheduler = MultirateScheduler()
        task = scheduler.add_task("a", 10.0, lambda dt: None)
        assert scheduler.find_task("a") is task
        assert scheduler.find_task("missing") is None


class TestSweepResultEdges:
    def test_empty_sweep_weight_range_raises(self):
        with pytest.raises(ValueError):
            SweepResult(wheelbase_mm=450.0).weight_range_g()

    def test_empty_sweep_best_configuration_none(self):
        assert SweepResult(wheelbase_mm=450.0).best_configuration() is None


class TestMetricsEdges:
    def test_flight_time_estimate_validation(self):
        with pytest.raises(ValueError):
            FlightTimeEstimate(minutes=-1.0, usable_energy_wh=1.0,
                               average_power_w=1.0)
        with pytest.raises(ValueError):
            FlightTimeEstimate(minutes=1.0, usable_energy_wh=1.0,
                               average_power_w=0.0)


class TestLinkEdges:
    def test_heavy_traffic_preserves_order(self):
        link = Link()
        for index in range(50):
            link.send(MessageType.STATE_REPORT, (float(index),))
        values = [m.payload[0] for m in link.drain()]
        assert values == sorted(values)
