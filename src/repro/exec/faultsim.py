"""Self-chaos harness: inject worker faults into the execution layer.

The repo's methodology is to test resilience by injecting the faults the
layer claims to survive (PR 1 injects into the drone, PR 5 into whole
flights).  This module applies the same discipline to the execution layer
itself: :class:`FaultyCallable` wraps a sweep callable and makes chosen
items crash, kill their worker, hang, dawdle, or fail flakily — so the
supervised pool's retry, quarantine, hang-kill, and degradation paths are
exercised by real worker processes, not mocks.

Cross-process bookkeeping uses an attempt ledger of files in
``state_dir``: a fault like "die on the first attempt, succeed on the
retry" must observe attempts made by *previous, now dead* workers, which
in-memory state cannot.  Probabilistic (flaky) faults draw from an RNG
derived only from ``(seed, item_key, attempt)``, keeping every injected
failure pattern reproducible — the same contract the chaos campaign
generator obeys, and the reason this module sits inside the rng-taint
pass's guarded packages.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

#: Raise :class:`WorkerFault` inside the worker (plain exception path).
FAULT_CRASH = "crash"
#: ``os._exit`` the hosting process — only when it is a pool worker, so
#: the supervisor (or a test process) is never killed by its own harness.
FAULT_DIE = "die"
#: Sleep far past any reasonable budget (the supervisor must kill us).
FAULT_HANG = "hang"
#: Sleep ``delay_s``, then succeed (latency, not failure).
FAULT_SLOW = "slow"
#: Fail with probability ``probability`` per attempt (seeded RNG).
FAULT_FLAKY = "flaky"

_KINDS = (FAULT_CRASH, FAULT_DIE, FAULT_HANG, FAULT_SLOW, FAULT_FLAKY)

#: Exit code of a worker killed by :data:`FAULT_DIE` (visible in CI logs).
DIE_EXIT_CODE = 77


class WorkerFault(RuntimeError):
    """The injected failure raised by crash/flaky faults."""


@dataclass(frozen=True)
class WorkerFaultSpec:
    """How one item misbehaves."""

    kind: str
    #: Fire only while the item's attempt count is <= this (None: always).
    until_attempt: Optional[int] = None
    #: Sleep for slow faults; hang faults sleep this long too (set it far
    #: above the supervisor's timeout so the kill path, not the sleep's
    #: natural end, resolves the chunk).
    delay_s: float = 3600.0
    #: Per-attempt trigger probability (flaky faults; others fire at 1.0).
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.until_attempt is not None and self.until_attempt <= 0:
            raise ValueError(
                f"until_attempt must be positive: {self.until_attempt}"
            )
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be non-negative: {self.delay_s}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of range: {self.probability}")


def stable_item_key(item: Any) -> int:
    """Process-stable integer key for an item (``hash()`` is salted)."""
    return zlib.crc32(repr(item).encode("utf-8"))


def _fault_rng(seed: int, item_key: int, attempt: int) -> np.random.Generator:
    """Deterministic per-(item, attempt) stream derived from the seed."""
    return np.random.default_rng((seed, item_key, attempt))


class FaultyCallable:
    """Picklable wrapper injecting worker faults around ``fn``.

    ``fn`` must be module-level (the wrapper crosses the process boundary
    like any sweep callable).  Items not named in ``faults`` pass straight
    through; a successful call always returns ``fn(item)``, so the serial
    reference for any supervised run is simply ``[fn(item) for item in
    items]``.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        faults: Mapping[Any, WorkerFaultSpec],
        state_dir: "os.PathLike[str] | str",
        seed: int = 0,
    ) -> None:
        self.fn = fn
        self.faults: Dict[Any, WorkerFaultSpec] = dict(faults)
        self.state_dir = os.fspath(state_dir)
        self.seed = seed
        #: The process that built the harness: never a legitimate kill
        #: target, which is what makes FAULT_DIE safe under inline
        #: execution (and under pytest).
        self.supervisor_pid = os.getpid()

    # -- attempt ledger ---------------------------------------------------

    def _ledger_path(self, item: Any) -> str:
        return os.path.join(
            self.state_dir, f"item_{stable_item_key(item):08x}.attempts"
        )

    def attempts(self, item: Any) -> int:
        """Attempts recorded so far for ``item`` (across all processes)."""
        try:
            return os.path.getsize(self._ledger_path(item))
        except OSError:
            return 0

    def _bump(self, item: Any) -> int:
        """Record one more attempt; returns the 1-based attempt number."""
        path = self._ledger_path(item)
        with open(path, "ab") as handle:
            handle.write(b".")
            handle.flush()
            os.fsync(handle.fileno())
        return os.path.getsize(path)

    # -- the injected callable --------------------------------------------

    def __call__(self, item: Any) -> Any:
        spec = self.faults.get(item)
        if spec is None:
            return self.fn(item)
        attempt = self._bump(item)
        if spec.until_attempt is not None and attempt > spec.until_attempt:
            return self.fn(item)
        if spec.probability < 1.0:
            rng = _fault_rng(self.seed, stable_item_key(item), attempt)
            if rng.random() >= spec.probability:
                return self.fn(item)
        if spec.kind == FAULT_SLOW:
            time.sleep(spec.delay_s)
            return self.fn(item)
        if spec.kind == FAULT_HANG:
            time.sleep(spec.delay_s)
            raise WorkerFault(
                f"hang fault on item {item!r} outlived its sleep "
                f"({spec.delay_s} s) — the supervisor failed to kill it"
            )
        if spec.kind == FAULT_DIE:
            if os.getpid() != self.supervisor_pid:
                os._exit(DIE_EXIT_CODE)
            # Inline execution: a worker-killing fault has no worker to
            # kill, so the pool pathology simply does not apply.
            return self.fn(item)
        raise WorkerFault(
            f"injected {spec.kind} fault on item {item!r} (attempt {attempt})"
        )
