"""Unit tests: PID, mixer, estimation, and the controller levels."""

import math

import numpy as np
import pytest

from repro.control.attitude import AttitudeController
from repro.control.estimation import ComplementaryFilter, InsEkf
from repro.control.mixer import MotorMixer
from repro.control.pid import PidController
from repro.control.position import (
    PositionController,
    VelocityController,
    acceleration_to_attitude_thrust,
)
from repro.control.thrust import ThrustController
from repro.physics import constants


class TestPid:
    def test_proportional_action(self):
        pid = PidController(kp=2.0)
        assert pid.update(setpoint=1.0, measurement=0.0, dt=0.01) == pytest.approx(2.0)

    def test_integral_accumulates(self):
        pid = PidController(kp=0.0, ki=1.0)
        for _ in range(100):
            output = pid.update(1.0, 0.0, 0.01)
        assert output == pytest.approx(1.0, rel=1e-6)

    def test_integral_antiwindup_clamps(self):
        pid = PidController(kp=0.0, ki=1.0, integral_limit=0.5)
        for _ in range(1000):
            output = pid.update(1.0, 0.0, 0.01)
        assert output == pytest.approx(0.5)

    def test_derivative_on_measurement_no_setpoint_kick(self):
        pid = PidController(kp=0.0, kd=1.0)
        pid.update(0.0, 0.0, 0.01)
        # A setpoint jump with constant measurement must not spike D.
        assert pid.update(10.0, 0.0, 0.01) == pytest.approx(0.0)

    def test_derivative_damps_measurement_motion(self):
        pid = PidController(kp=0.0, kd=1.0)
        pid.update(0.0, 0.0, 0.01)
        output = pid.update(0.0, 0.1, 0.01)
        assert output < 0.0

    def test_output_limits(self):
        pid = PidController(kp=100.0, output_limits=(-1.0, 1.0))
        assert pid.update(10.0, 0.0, 0.01) == 1.0
        assert pid.update(-10.0, 0.0, 0.01) == -1.0

    def test_reset(self):
        pid = PidController(kp=1.0, ki=1.0)
        pid.update(1.0, 0.0, 0.1)
        pid.reset()
        assert pid.updates == 0
        assert pid.update(0.0, 0.0, 0.1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PidController(kp=-1.0)
        with pytest.raises(ValueError):
            PidController(kp=1.0, output_limits=(1.0, -1.0))
        pid = PidController(kp=1.0)
        with pytest.raises(ValueError):
            pid.update(0.0, 0.0, 0.0)


class TestMixer:
    def make(self) -> MotorMixer:
        return MotorMixer(arm_length_m=0.225, max_thrust_per_motor_n=8.0)

    def test_pure_collective_is_even(self):
        thrusts = self.make().mix(8.0, np.zeros(3))
        assert np.allclose(thrusts, 2.0)

    def test_mix_inverts_wrench(self):
        """mix() composed with the rigid-body wrench map is identity."""
        from repro.physics.rigid_body import QuadcopterBody

        mixer = self.make()
        body = QuadcopterBody(mass_kg=1.0, arm_length_m=0.225)
        wrench_in = (6.0, np.array([0.05, -0.03, 0.004]))
        thrusts = mixer.mix(*wrench_in)
        total, torque = body.wrench_from_motor_thrusts(
            thrusts, torque_thrust_ratio_m=mixer.torque_thrust_ratio_m
        )
        assert total == pytest.approx(wrench_in[0], rel=1e-6)
        assert np.allclose(torque, wrench_in[1], atol=1e-9)

    def test_saturation_never_negative(self):
        thrusts = self.make().mix(0.5, np.array([2.0, 2.0, 0.5]))
        assert np.all(thrusts >= 0.0)
        assert np.all(thrusts <= 8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MotorMixer(arm_length_m=0.0)
        with pytest.raises(ValueError):
            self.make().mix(-1.0, np.zeros(3))
        with pytest.raises(ValueError):
            self.make().mix(1.0, np.zeros(2))


class TestEkf:
    def test_static_prediction_stays_put(self):
        ekf = InsEkf()
        gravity_only = np.array([0.0, 0.0, constants.GRAVITY_M_S2])
        for _ in range(200):
            ekf.predict(gravity_only, np.zeros(3), 0.005)
        assert np.allclose(ekf.position_m, 0.0, atol=1e-6)
        assert np.allclose(ekf.attitude_rad, 0.0, atol=1e-9)

    def test_gps_pulls_position(self):
        ekf = InsEkf()
        gravity_only = np.array([0.0, 0.0, constants.GRAVITY_M_S2])
        for _ in range(120):
            ekf.predict(gravity_only, np.zeros(3), 0.01)
            ekf.update_gps(np.array([5.0, -2.0, 0.0]))
        assert ekf.position_m[0] == pytest.approx(5.0, abs=0.5)
        assert ekf.position_m[1] == pytest.approx(-2.0, abs=0.5)

    def test_barometer_pulls_altitude(self):
        ekf = InsEkf()
        gravity_only = np.array([0.0, 0.0, constants.GRAVITY_M_S2])
        for _ in range(120):
            ekf.predict(gravity_only, np.zeros(3), 0.01)
            ekf.update_barometer(10.0)
        assert ekf.position_m[2] == pytest.approx(10.0, abs=0.5)

    def test_magnetometer_pulls_yaw(self):
        ekf = InsEkf()
        for _ in range(50):
            ekf.update_magnetometer(0.8)
        assert ekf.attitude_rad[2] == pytest.approx(0.8, abs=0.05)

    def test_covariance_shrinks_with_updates(self):
        ekf = InsEkf()
        ekf.predict(np.array([0, 0, 9.80665]), np.zeros(3), 0.01)
        before = ekf.covariance[0, 0]
        ekf.update_gps(np.zeros(3))
        assert ekf.covariance[0, 0] < before

    def test_flop_accounting_grows(self):
        ekf = InsEkf()
        ekf.predict(np.array([0, 0, 9.80665]), np.zeros(3), 0.01)
        after_predict = ekf.flops
        ekf.update_barometer(0.0)
        assert ekf.flops > after_predict > 0

    def test_validation(self):
        ekf = InsEkf()
        with pytest.raises(ValueError):
            ekf.predict(np.zeros(3), np.zeros(3), 0.0)
        with pytest.raises(ValueError):
            ekf.predict(np.zeros(2), np.zeros(3), 0.01)


class TestComplementaryFilter:
    def test_level_accel_gives_zero_attitude(self):
        cf = ComplementaryFilter()
        for _ in range(100):
            angles = cf.update(np.array([0, 0, 9.80665]), np.zeros(3), 0.01)
        assert np.allclose(angles, 0.0, atol=1e-3)

    def test_converges_to_accel_attitude(self):
        cf = ComplementaryFilter(time_constant_s=0.2)
        tilted = np.array([0.0, math.sin(0.2) * 9.80665, math.cos(0.2) * 9.80665])
        for _ in range(2000):
            angles = cf.update(tilted, np.zeros(3), 0.005)
        assert angles[0] == pytest.approx(0.2, abs=0.02)

    def test_cheap_flop_cost(self):
        assert ComplementaryFilter().flops_per_update < 100


class TestControllerLevels:
    def test_attitude_controller_torque_direction(self):
        controller = AttitudeController(inertia_kg_m2=np.eye(3) * 0.01)
        torque = controller.update(
            np.array([0.2, 0.0, 0.0]), np.zeros(3), np.zeros(3), 0.005
        )
        assert torque[0] > 0.0  # roll toward the target

    def test_attitude_yaw_error_wraps(self):
        controller = AttitudeController(inertia_kg_m2=np.eye(3) * 0.01)
        torque = controller.update(
            np.array([0.0, 0.0, 3.0]),
            np.array([0.0, 0.0, -3.0]),
            np.zeros(3),
            0.005,
        )
        # Shortest path from -3 rad to +3 rad is negative (through pi).
        assert torque[2] < 0.0

    def test_velocity_controller_accelerates_toward_target(self):
        controller = VelocityController()
        accel = controller.update(np.array([2.0, 0, 0]), np.zeros(3), 0.025)
        assert accel[0] > 0.0
        assert np.linalg.norm(accel) <= controller.max_acceleration_m_s2 + 1e-9

    def test_position_controller_caps_velocity(self):
        controller = PositionController(max_velocity_m_s=2.0)
        accel = controller.update(
            np.array([100.0, 0, 0]), np.zeros(3), np.zeros(3), 0.025
        )
        # The commanded velocity is capped, so acceleration is finite.
        assert np.linalg.norm(accel) <= controller.velocity.max_acceleration_m_s2

    def test_acceleration_to_attitude_hover(self):
        attitude, thrust = acceleration_to_attitude_thrust(
            np.zeros(3), 0.0, mass_kg=1.0
        )
        assert np.allclose(attitude, 0.0, atol=1e-9)
        assert thrust == pytest.approx(constants.GRAVITY_M_S2)

    def test_acceleration_to_attitude_tilts_forward(self):
        attitude, thrust = acceleration_to_attitude_thrust(
            np.array([2.0, 0.0, 0.0]), 0.0, mass_kg=1.0
        )
        assert attitude[1] > 0.0 or attitude[1] < 0.0  # pitched
        assert thrust > constants.GRAVITY_M_S2

    def test_tilt_limit_enforced(self):
        attitude, _ = acceleration_to_attitude_thrust(
            np.array([50.0, 0.0, 0.0]), 0.0, mass_kg=1.0,
            max_tilt_rad=math.radians(30.0),
        )
        tilt = np.linalg.norm(attitude[0:2])
        assert tilt <= math.radians(31.0)

    def test_thrust_controller_lag(self):
        mixer = MotorMixer(arm_length_m=0.225, max_thrust_per_motor_n=8.0)
        controller = ThrustController(mixer=mixer, motor_time_constant_s=0.05)
        first = controller.update(8.0, np.zeros(3), 0.001)
        assert np.all(first < 2.0)  # lag prevents instant response
        for _ in range(1000):
            settled = controller.update(8.0, np.zeros(3), 0.001)
        assert np.allclose(settled, 2.0, atol=0.01)
