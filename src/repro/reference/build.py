"""The paper's open-source reference drone (Section 4, Figure 14).

A $500, 450 mm quadcopter: Navio2 + Raspberry Pi on a Crazepony F450-class
frame, able to carry 200 g of extra payload.  Figure 14's weight breakdown
is reproduced verbatim; helpers compare it against the Section 3.1 catalog
trends and instantiate a matching simulator model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.simulator import DroneModel

#: Figure 14: part -> weight (g).  Sums to 1071 g.
FIGURE14_WEIGHTS_G: Dict[str, float] = {
    "frame": 272.0,
    "battery": 248.0,
    "motors": 220.0,
    "esc": 112.0,
    "rpi": 50.0,
    "propellers": 40.0,
    "gps": 30.0,
    "navio2": 23.0,
    "misc": 20.0,
    "rc_receiver": 17.0,
    "telemetry": 15.0,
    "power_module": 15.0,
    "ppm_encoder": 9.0,
}

TOTAL_COST_USD = 500.0
EXTRA_PAYLOAD_CAPACITY_G = 200.0
WHEELBASE_MM = 450.0
BATTERY_CELLS = 3
BATTERY_CAPACITY_MAH = 3000.0


@dataclass(frozen=True)
class BuildPart:
    """One bill-of-materials line."""

    name: str
    weight_g: float
    share: float


def total_weight_g() -> float:
    """The reference drone's all-up weight (g)."""
    return sum(FIGURE14_WEIGHTS_G.values())


def weight_breakdown() -> List[BuildPart]:
    """Figure 14 as parts with weight shares, heaviest first."""
    total = total_weight_g()
    parts = [
        BuildPart(name=name, weight_g=weight, share=weight / total)
        for name, weight in FIGURE14_WEIGHTS_G.items()
    ]
    return sorted(parts, key=lambda p: p.weight_g, reverse=True)


def major_components() -> List[str]:
    """The four dominant weight contributors (paper: frame, battery,
    motors, and ESCs)."""
    return [part.name for part in weight_breakdown()[:4]]


def simulator_model(
    compute_power_w: float = 4.56, sensors_power_w: float = 1.0
) -> DroneModel:
    """A :class:`DroneModel` of the reference drone.

    Default compute power is the measured RPi running autopilot + active
    SLAM (Section 5.1).
    """
    return DroneModel(
        mass_kg=total_weight_g() / 1000.0,
        wheelbase_mm=WHEELBASE_MM,
        battery_cells=BATTERY_CELLS,
        battery_capacity_mah=BATTERY_CAPACITY_MAH,
        compute_power_w=compute_power_w,
        sensors_power_w=sensors_power_w,
    )


def avionics_weight_g() -> float:
    """Everything that is neither propulsion, frame, battery, nor compute —
    the 'avionics' lump the design-space equations carry (~80 g here)."""
    avionics = ("gps", "rc_receiver", "telemetry", "power_module",
                "ppm_encoder")
    return sum(FIGURE14_WEIGHTS_G[name] for name in avionics)


def catalog_consistency() -> Dict[str, float]:
    """Reference weights vs the Section 3.1 catalog fits (ratios near 1).

    Returns model/actual ratios for the frame, battery, and ESC set —
    the check that Figure 14 'shows similar trends as shown in Section 3.1'.
    """
    from repro.components.battery import battery_weight_g
    from repro.components.esc import esc_set_weight_g
    from repro.components.frame import frame_weight_g

    frame_ratio = frame_weight_g(WHEELBASE_MM) / FIGURE14_WEIGHTS_G["frame"]
    battery_ratio = (
        battery_weight_g(BATTERY_CELLS, BATTERY_CAPACITY_MAH)
        / FIGURE14_WEIGHTS_G["battery"]
    )
    # The build sheet specifies 4 x 30 A ESCs.
    esc_ratio = esc_set_weight_g(30.0) / FIGURE14_WEIGHTS_G["esc"]
    return {
        "frame": frame_ratio,
        "battery": battery_ratio,
        "esc_set": esc_ratio,
    }
