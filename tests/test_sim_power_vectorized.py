"""Equality pin for the vectorized simulator power model.

``FlightSimulator.electrical_power_w`` replaced a per-motor Python loop
over :func:`repro.physics.propeller.hover_electrical_power_w` with array
math.  These tests keep the replacement honest: the vectorized form must
be *bit-for-bit* equal to the loop it displaced, including the clamping of
negative commanded thrusts.
"""

import numpy as np
import pytest

from repro.physics.propeller import hover_electrical_power_w
from repro.sim.simulator import DroneModel, FlightSimulator


def _loop_power_w(sim: FlightSimulator, motor_thrusts_n: np.ndarray) -> float:
    """The original per-motor loop, kept verbatim as the oracle."""
    propeller_inch = sim.model.propeller_inch
    propulsion = 0.0
    for thrust in motor_thrusts_n:
        propulsion += hover_electrical_power_w(
            max(0.0, float(thrust)),
            propeller_inch,
            figure_of_merit=sim._hover_eff,
            drive_efficiency=1.0,
        )
    return propulsion + sim.model.compute_power_w + sim.model.sensors_power_w


@pytest.fixture
def simulator() -> FlightSimulator:
    model = DroneModel(
        mass_kg=1.071,
        wheelbase_mm=450.0,
        battery_cells=3,
        battery_capacity_mah=3000.0,
        compute_power_w=4.56,
        sensors_power_w=1.0,
    )
    return FlightSimulator(model)


class TestVectorizedElectricalPower:
    def test_matches_loop_bitwise_on_random_thrusts(self, simulator):
        rng = np.random.default_rng(20210419)
        for _ in range(500):
            thrusts = rng.uniform(-2.0, 12.0, 4)
            assert simulator.electrical_power_w(thrusts) == _loop_power_w(
                simulator, thrusts
            )

    def test_matches_loop_across_models(self):
        rng = np.random.default_rng(7)
        for wheelbase_mm in (100.0, 200.0, 450.0, 800.0):
            model = DroneModel(
                mass_kg=0.3 + wheelbase_mm / 400.0,
                wheelbase_mm=wheelbase_mm,
                battery_cells=3,
                battery_capacity_mah=2200.0,
                compute_power_w=3.0,
                sensors_power_w=2.0,
            )
            sim = FlightSimulator(model)
            for _ in range(100):
                thrusts = rng.uniform(0.0, 6.0, 4)
                assert sim.electrical_power_w(thrusts) == _loop_power_w(
                    sim, thrusts
                )

    def test_negative_thrusts_clamp_to_zero(self, simulator):
        idle = simulator.electrical_power_w(np.zeros(4))
        clamped = simulator.electrical_power_w(np.array([-1.0, -0.5, 0.0, -3.0]))
        assert clamped == idle
        assert idle == (
            simulator.model.compute_power_w + simulator.model.sensors_power_w
        )

    def test_power_scales_with_thrust(self, simulator):
        low = simulator.electrical_power_w(np.full(4, 1.0))
        high = simulator.electrical_power_w(np.full(4, 4.0))
        assert high > low > 0.0
