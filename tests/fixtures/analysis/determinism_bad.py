"""Determinism fixture: unseeded RNGs, wall clocks, set iteration."""

import random
import time
from datetime import datetime

import numpy as np


def noisy_sample() -> float:
    noise = np.random.normal()
    jitter = random.random()
    stamp = time.time()
    moment = datetime.now()
    total = noise + jitter + stamp + moment.microsecond
    for item in {3, 1, 2}:
        total += item
    return total


def seeded_sample() -> float:
    rng = np.random.default_rng(42)
    local = random.Random(7)
    total = float(rng.normal()) + local.random()
    for item in sorted({3, 1, 2}):
        total += item
    return total


def tolerated() -> float:
    return time.time()  # lint: ignore[det-wallclock]
