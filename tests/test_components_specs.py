"""Unit tests: component spec classes (battery, ESC, frame, motor,
propeller, compute boards, external sensors)."""

import pytest

from repro.components.battery import (
    FIG7_WEIGHT_FITS,
    BatterySpec,
    battery_weight_g,
    make_battery,
)
from repro.components.compute import (
    ADVANCED_CHIP_POWER_W,
    BASIC_CHIP_POWER_W,
    BoardClass,
    boards_by_class,
    find_board,
    table4_flight_controllers,
)
from repro.components.esc import (
    EscClass,
    esc_set_weight_g,
    esc_unit_weight_g,
    make_esc,
)
from repro.components.frame import (
    FrameSpec,
    frame_weight_g,
    make_frame,
)
from repro.components.motor import design_motor_product
from repro.components.propeller import (
    make_propeller,
    propeller_set_weight_g,
    standard_sizes,
)
from repro.components.sensors import (
    SensorKind,
    find_sensor,
    sensors_by_kind,
    table4_external_sensors,
)


class TestBatterySpecs:
    def test_fig7_fit_coefficients_match_paper(self):
        assert FIG7_WEIGHT_FITS[6].slope == pytest.approx(0.116)
        assert FIG7_WEIGHT_FITS[6].intercept == pytest.approx(159.117)
        assert FIG7_WEIGHT_FITS[1].slope == pytest.approx(0.019)

    def test_weight_model_3s_5000(self):
        assert battery_weight_g(3, 5000.0) == pytest.approx(
            0.074 * 5000.0 + 16.935
        )

    def test_more_cells_heavier_at_same_capacity(self):
        assert battery_weight_g(6, 4000.0) > battery_weight_g(3, 4000.0)

    def test_unsupported_cells_raise(self):
        with pytest.raises(ValueError):
            battery_weight_g(8, 1000.0)

    def test_spec_derived_quantities(self):
        battery = make_battery(3, 3000.0, c_rating=30.0)
        assert battery.configuration == "3S1P"
        assert battery.nominal_voltage_v == pytest.approx(11.1)
        assert battery.stored_energy_wh == pytest.approx(33.3)
        assert battery.usable_energy_wh == pytest.approx(33.3 * 0.85)
        assert battery.max_continuous_current_a == pytest.approx(90.0)

    def test_energy_density_realistic(self):
        """Real LiPo packs land around 120-200 Wh/kg."""
        battery = make_battery(4, 5000.0)
        assert 80.0 < battery.energy_density_wh_per_kg < 250.0

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            BatterySpec(name="x", manufacturer="m", weight_g=100.0,
                        cells=3, capacity_mah=-1.0)


class TestEscSpecs:
    def test_long_flight_heavier_than_short(self):
        """Figure 8a: long-flight ESCs out-weigh racing ESCs above ~5 A."""
        assert esc_set_weight_g(40.0, EscClass.LONG_FLIGHT) > esc_set_weight_g(
            40.0, EscClass.SHORT_FLIGHT
        )

    def test_set_weight_matches_fit(self):
        assert esc_set_weight_g(30.0, EscClass.LONG_FLIGHT) == pytest.approx(
            4.9678 * 30.0 - 15.757
        )

    def test_unit_weight_is_quarter_of_set(self):
        assert esc_unit_weight_g(30.0) == pytest.approx(
            esc_set_weight_g(30.0) / 4.0
        )

    def test_switching_frequency(self):
        esc = make_esc(30.0)
        # 6 commutation events per revolution.
        assert esc.switching_frequency_hz(10_000.0) == pytest.approx(1000.0)

    def test_burst_exceeds_continuous(self):
        esc = make_esc(25.0)
        assert esc.burst_current_a > esc.max_continuous_current_a

    def test_invalid_current(self):
        with pytest.raises(ValueError):
            esc_set_weight_g(-5.0)


class TestFrameSpecs:
    def test_large_fit_matches_paper(self):
        assert frame_weight_g(450.0) == pytest.approx(1.2767 * 450.0 - 167.6)

    def test_small_frames_in_paper_band(self):
        """Paper: sub-200 mm frames weigh 50-200 g."""
        for wheelbase in (90.0, 130.0, 180.0):
            assert 20.0 <= frame_weight_g(wheelbase) <= 200.0

    def test_piecewise_fit_continuous_at_200mm(self):
        below = frame_weight_g(199.99)
        above = frame_weight_g(200.01)
        assert abs(above - below) < 1.0

    def test_indoor_classification(self):
        assert make_frame(90.0).is_indoor
        assert not make_frame(450.0).is_indoor

    def test_arm_length(self):
        assert make_frame(450.0).arm_length_m == pytest.approx(0.225)

    def test_out_of_range_wheelbase(self):
        with pytest.raises(ValueError):
            frame_weight_g(2000.0)
        with pytest.raises(ValueError):
            FrameSpec(name="x", manufacturer="m", weight_g=100.0,
                      wheelbase_mm=10.0)


class TestMotorProducts:
    def test_product_reaches_design_thrust(self):
        product = design_motor_product(
            propeller_inch=10.0, max_thrust_g=800.0, cells=3
        )
        from repro.physics.propeller import typical_propeller_for

        thrust = product.max_thrust_g(3, typical_propeller_for(10.0))
        assert thrust >= 700.0  # headroom margins make this approximate

    def test_kv_in_figure9_range_for_450mm(self):
        product = design_motor_product(
            propeller_inch=10.0, max_thrust_g=1000.0, cells=3
        )
        assert 300.0 < product.kv_rpm_per_v < 3000.0

    def test_physics_model_roundtrip(self):
        product = design_motor_product(
            propeller_inch=10.0, max_thrust_g=800.0, cells=3
        )
        motor = product.to_physics_model()
        assert motor.kv_rpm_per_v == product.kv_rpm_per_v
        assert motor.mass_g == product.weight_g


class TestPropellerProducts:
    def test_designation_naming(self):
        prop = make_propeller(10.0)
        assert prop.designation.startswith("100")

    def test_set_weight_scales_with_count(self):
        assert propeller_set_weight_g(10.0, count=8) == pytest.approx(
            2 * propeller_set_weight_g(10.0, count=4)
        )

    def test_standard_sizes_sorted(self):
        sizes = standard_sizes()
        assert sizes == sorted(sizes)
        assert 10.0 in sizes

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            propeller_set_weight_g(10.0, count=0)


class TestComputeBoards:
    def test_table4_census_size(self):
        assert len(table4_flight_controllers()) == 10

    def test_power_levels_match_table4(self):
        navio = find_board("Navio2")
        assert navio.power_w == pytest.approx(0.15 * 5.0)
        tx2 = find_board("Jetson TX2")
        assert tx2.power_w == pytest.approx(10.0)
        assert tx2.weight_g == pytest.approx(85.0)

    def test_class_partition(self):
        basic = boards_by_class(BoardClass.BASIC)
        improved = boards_by_class(BoardClass.IMPROVED)
        assert len(basic) + len(improved) == 10
        assert all(not b.supports_outer_loop for b in basic)

    def test_chip_power_abstractions(self):
        """Section 3.2 abstracts boards to 3 W and 20 W levels."""
        assert BASIC_CHIP_POWER_W == 3.0
        assert ADVANCED_CHIP_POWER_W == 20.0
        powers = [b.power_w for b in table4_flight_controllers()]
        assert min(powers) < BASIC_CHIP_POWER_W
        assert max(powers) >= ADVANCED_CHIP_POWER_W

    def test_unknown_board_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="Navio2"):
            find_board("definitely-not-a-board")


class TestExternalSensors:
    def test_lidars_are_self_powered_kg_class(self):
        """Paper: drone LiDARs are ~1 kg, self-powered, 10-50 W."""
        lidars = sensors_by_kind(SensorKind.LIDAR)
        assert len(lidars) == 3
        for lidar in lidars:
            assert lidar.self_powered
            assert lidar.weight_g >= 900.0
            assert lidar.bus_power_w == 0.0

    def test_fpv_cameras_under_1w(self):
        for camera in sensors_by_kind(SensorKind.FPV_CAMERA):
            assert camera.power_w <= 1.0

    def test_find_sensor(self):
        hovermap = find_sensor("HoverMap")
        assert hovermap.weight_g == pytest.approx(1800.0)
        with pytest.raises(KeyError):
            find_sensor("nope")

    def test_hd_camera_self_powered_100g(self):
        hd = find_sensor("HD Action Camera")
        assert hd.self_powered
        assert hd.weight_g == pytest.approx(100.0)
