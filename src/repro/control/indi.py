"""Incremental nonlinear dynamic inversion (INDI) rate controller.

The paper (Section 2.1.3-D) cites sensor-based INDI as the state of the art
for stabilizing drones under powerful wind gusts — and notes that even this
"highly specialized" technique runs at only 500 Hz, reinforcing that the
inner loop is physics-limited rather than compute-limited.

INDI replaces the model-based torque computation with an *increment*: it
measures the achieved angular acceleration (from gyro differentiation) and
commands a torque change proportional to the acceleration error.  Unmodeled
disturbances (gusts) are rejected because whatever acceleration they caused
is measured and counteracted directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.markers import hot_path


@dataclass
class IndiRateController:
    """Body-rate controller using incremental dynamic inversion."""

    inertia_kg_m2: np.ndarray
    rate_kp: float = 18.0
    #: Low-pass time constant for the angular-acceleration estimate; INDI's
    #: robustness comes from filtering the differentiated gyro.
    filter_time_constant_s: float = 0.012
    max_torque_nm: float = 1.0
    updates: int = field(default=0)
    _filtered_accel: np.ndarray = field(init=False, repr=False)
    _last_rates: Optional[np.ndarray] = field(default=None, repr=False)
    _torque: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.inertia_kg_m2 = np.asarray(self.inertia_kg_m2, dtype=float)
        if self.inertia_kg_m2.shape != (3, 3):
            raise ValueError("inertia must be a 3x3 matrix")
        if self.rate_kp <= 0:
            raise ValueError("rate gain must be positive")
        if self.filter_time_constant_s <= 0:
            raise ValueError("filter time constant must be positive")
        if self.max_torque_nm <= 0:
            raise ValueError("torque limit must be positive")
        self._filtered_accel = np.zeros(3)
        self._last_rates = None
        self._torque = np.zeros(3)

    @hot_path
    def update(
        self,
        rate_setpoint_rad_s: np.ndarray,
        body_rates_rad_s: np.ndarray,
        dt: float,
    ) -> np.ndarray:
        """One INDI step: returns the body torque command (N*m).

        The increment law: tau += I * (kp*(omega_sp - omega) - alpha_f),
        where alpha_f is the filtered measured angular acceleration.  The
        measured term absorbs gust torques without modeling them.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        setpoint = np.asarray(rate_setpoint_rad_s, dtype=float)
        rates = np.asarray(body_rates_rad_s, dtype=float)
        if setpoint.shape != (3,) or rates.shape != (3,):
            raise ValueError("INDI inputs must be 3-vectors")

        if self._last_rates is None:
            measured_accel = np.zeros(3)
        else:
            measured_accel = (rates - self._last_rates) / dt
        self._last_rates = rates.copy()
        alpha = dt / (self.filter_time_constant_s + dt)
        self._filtered_accel = (
            self._filtered_accel + alpha * (measured_accel - self._filtered_accel)
        )

        desired_accel = self.rate_kp * (setpoint - rates)
        increment = self.inertia_kg_m2 @ (desired_accel - self._filtered_accel)
        self._torque = np.clip(
            self._torque + increment, -self.max_torque_nm, self.max_torque_nm
        )
        self.updates += 1
        return self._torque.copy()

    def reset(self) -> None:
        self._filtered_accel = np.zeros(3)
        self._last_rates = None
        self._torque = np.zeros(3)
        self.updates = 0

    @property
    def flops_per_update(self) -> int:
        """Differentiation + filter + inversion matvec — still tiny."""
        return 60
