"""Unit tests: fit re-derivation (Figs 7-9), validation (Fig 10 diamonds,
Fig 11), and the Figure 12 wizard."""

import pytest

from repro.components.esc import EscClass
from repro.core.tradeoffs import (
    compare_battery_fits,
    compare_esc_fits,
    fit_battery_weight,
    fit_esc_weight,
    fit_frame_weight,
    motor_current_curves,
)
from repro.core.validation import (
    baseline_compute_share_range,
    figure11_small_drone_study,
    validate_against_commercial,
)
from repro.core.wizard import DesignWizard
from repro.components.compute import find_board
from repro.components.sensors import find_sensor


class TestFitRecovery:
    def test_battery_fits_recover_paper_lines(self, catalog):
        """Figure 7: every per-cell slope within the injected scatter."""
        comparisons = compare_battery_fits(catalog)
        assert len(comparisons) == 6
        for comparison in comparisons:
            assert comparison.slope_error < 0.15, comparison.label
            assert comparison.recovered.r_squared > 0.85

    def test_esc_fits_recover_paper_lines(self, catalog):
        comparisons = compare_esc_fits(catalog)
        assert len(comparisons) == 2
        for comparison in comparisons:
            assert comparison.slope_error < 0.25, comparison.label

    def test_frame_fit_recovers_large_slope(self, catalog):
        fit = fit_frame_weight(catalog.frames)
        assert fit.slope == pytest.approx(1.2767, rel=0.15)

    def test_fit_ordering_by_cells(self, catalog):
        """Higher-voltage packs weigh more per mAh (Figure 7 trend)."""
        fits = fit_battery_weight(catalog.batteries)
        assert fits[6].slope > fits[3].slope > fits[1].slope

    def test_esc_class_separation(self, catalog):
        fits = fit_esc_weight(catalog.escs)
        assert (
            fits[EscClass.LONG_FLIGHT].slope
            > fits[EscClass.SHORT_FLIGHT].slope
        )


class TestFigure9Curves:
    def test_currents_increase_with_weight(self):
        curves = motor_current_curves(450.0, cell_counts=(3,))
        currents = curves[0].currents_a
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_more_cells_less_current(self):
        curves = {
            c.cells: c for c in motor_current_curves(450.0, cell_counts=(1, 3, 6))
        }
        assert all(
            curves[6].currents_a < curves[3].currents_a
        )
        assert all(curves[3].currents_a < curves[1].currents_a)

    def test_kv_span_matches_figure9(self):
        """Tiny props huge Kv; big props small Kv."""
        tiny = motor_current_curves(50.0, cell_counts=(1,))[0]
        large = motor_current_curves(800.0, cell_counts=(6,))[0]
        assert tiny.kv_at_max_weight > 10_000.0
        assert large.kv_at_max_weight < 1_500.0

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            motor_current_curves(450.0, basic_weights_g=[-100.0])


class TestCommercialValidation:
    def test_model_matches_implied_power_for_mid_drones(self):
        """Fig 10 diamonds: model hover power tracks released flight times."""
        points = validate_against_commercial()
        by_name = {p.drone.name: p for p in points}
        phantom = by_name["DJI Phantom 4"]
        assert phantom.power_ratio is not None
        assert 0.6 < phantom.power_ratio < 1.4

    def test_majority_of_drones_within_2x(self):
        points = [p for p in validate_against_commercial() if p.power_ratio]
        close = [p for p in points if 0.5 < p.power_ratio < 2.0]
        assert len(close) >= len(points) * 0.6

    def test_figure11_rows_complete(self):
        rows = figure11_small_drone_study()
        assert len(rows) == 6
        names = [r.name for r in rows]
        assert names[0] == "Parrot Mambo"

    def test_figure11_heavy_compute_band(self):
        """Paper: heavy compute reaches 10-20% of hover power on small drones."""
        rows = figure11_small_drone_study()
        shares = [r.heavy_compute_share_hovering for r in rows]
        assert max(shares) > 0.10
        assert min(shares) > 0.01

    def test_figure11_maneuver_exceeds_hover(self):
        for row in figure11_small_drone_study():
            assert row.maneuvering_power_w > row.hovering_power_w

    def test_baseline_share_band(self):
        """Paper: plain hover compute is 2-7% on these drones."""
        low, high = baseline_compute_share_range()
        assert 0.001 < low < high < 0.12


class TestDesignWizard:
    def test_full_procedure(self):
        wizard = DesignWizard(wheelbase_mm=450.0)
        wizard.add_board(find_board("Raspberry Pi 4"))
        wizard.add_sensor(find_sensor("Night Eagle 2"))
        wizard.add_payload(100.0)
        evaluation = wizard.select_battery(3, 3000.0)
        assert evaluation.flight_time_min > 5.0
        outcome = wizard.quantify_optimization(power_saved_w=4.0)
        assert outcome.gained_flight_time_min > 0.0
        report = wizard.report()
        assert "Add compute board" in report
        assert "Quantify optimization" in report

    def test_adding_accelerator_weight_offsets_gain(self):
        wizard = DesignWizard(wheelbase_mm=450.0)
        wizard.add_compute(power_w=10.0, weight_g=85.0)
        wizard.select_battery(3, 3000.0)
        pure_power = wizard.quantify_optimization(power_saved_w=9.5)
        with_weight = wizard.quantify_optimization(
            power_saved_w=9.5, weight_delta_g=75.0
        )
        assert with_weight.gained_flight_time_min < pure_power.gained_flight_time_min

    def test_suggest_battery_maximizes_flight_time(self):
        wizard = DesignWizard(wheelbase_mm=450.0)
        best = wizard.suggest_battery(
            cells_options=(3, 6), capacities_mah=(2000, 4000, 8000)
        )
        manual = DesignWizard(wheelbase_mm=450.0).select_battery(3, 2000.0)
        assert best.flight_time_min >= manual.flight_time_min

    def test_requires_battery_before_optimizing(self):
        wizard = DesignWizard(wheelbase_mm=450.0)
        with pytest.raises(RuntimeError):
            wizard.quantify_optimization(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignWizard(wheelbase_mm=0.0)
        wizard = DesignWizard(wheelbase_mm=450.0)
        with pytest.raises(ValueError):
            wizard.add_payload(-5.0)
