"""Descriptor matching with Lowe ratio test and mutual-consistency check."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.slam.features import FeatureSet, hamming_distance_matrix

MAX_MATCH_DISTANCE = 64     # bits; ORB matches above this are junk
RATIO_TEST = 0.8            # Lowe ratio on best/second-best


@dataclass(frozen=True)
class Match:
    """One accepted correspondence between two feature sets."""

    index_a: int
    index_b: int
    distance: int


@dataclass(frozen=True)
class MatchResult:
    matches: List[Match]
    operations: int

    @property
    def count(self) -> int:
        return len(self.matches)


def match_features(a: FeatureSet, b: FeatureSet) -> MatchResult:
    """Brute-force Hamming matching with ratio and cross checks."""
    if a.count == 0 or b.count == 0:
        return MatchResult(matches=[], operations=0)
    distances, operations = hamming_distance_matrix(a.descriptors, b.descriptors)
    best_b = np.argmin(distances, axis=1)
    matches: List[Match] = []
    for index_a, index_b in enumerate(best_b):
        row = distances[index_a]
        best = int(row[index_b])
        if best > MAX_MATCH_DISTANCE:
            continue
        # Ratio test against the second-best candidate.
        if row.size > 1:
            second = int(np.partition(row, 1)[1])
            if second > 0 and best > RATIO_TEST * second:
                continue
        # Mutual consistency: b's best must point back to a.
        if int(np.argmin(distances[:, index_b])) != index_a:
            continue
        matches.append(Match(index_a=index_a, index_b=int(index_b), distance=best))
    return MatchResult(matches=matches, operations=operations)


def match_against_map(
    features: FeatureSet,
    map_descriptors: np.ndarray,
    map_landmark_ids: np.ndarray,
) -> MatchResult:
    """Match a frame's features against stored map-point descriptors."""
    if map_descriptors.shape[0] != map_landmark_ids.shape[0]:
        raise ValueError("map descriptors and ids must align")
    if features.count == 0 or map_descriptors.shape[0] == 0:
        return MatchResult(matches=[], operations=0)
    distances, operations = hamming_distance_matrix(
        features.descriptors, map_descriptors
    )
    matches: List[Match] = []
    best_map = np.argmin(distances, axis=1)
    for index_f, index_m in enumerate(best_map):
        best = int(distances[index_f, index_m])
        if best > MAX_MATCH_DISTANCE:
            continue
        matches.append(
            Match(index_a=index_f, index_b=int(map_landmark_ids[index_m]),
                  distance=best)
        )
    return MatchResult(matches=matches, operations=operations)


def match_by_projection(
    features: FeatureSet,
    map_points,
    pose,
    camera,
    radius_px: float = 18.0,
) -> MatchResult:
    """Projection-guided matching — ORB-SLAM's tracking-time strategy.

    Each map point is projected with the predicted pose; only features
    within ``radius_px`` of the projection are descriptor-compared.  This is
    both the realistic algorithm and vastly cheaper than brute force against
    the whole map (the paper's RPi profile depends on this cost structure).

    ``map_points`` is an iterable of :class:`repro.slam.map.MapPoint`;
    ``pose`` is (position_m, yaw_rad).  Matches carry the *map point id* in
    ``index_b``.
    """
    from repro.slam.features import hamming_distance
    from repro.slam.tracking import camera_point

    if radius_px <= 0:
        raise ValueError(f"search radius must be positive, got {radius_px}")
    position, yaw = pose
    matches: List[Match] = []
    operations = 0
    if features.count == 0:
        return MatchResult(matches=[], operations=0)
    keypoints = features.keypoints_px
    taken = set()
    for point in map_points:
        cam = camera_point(point.position_m, position, yaw)
        if cam[2] < 0.2:
            continue
        u, v = camera.project(cam)
        operations += 20
        if not camera.in_view(u, v):
            continue
        deltas = keypoints - np.array([u, v])
        nearby = np.where((np.abs(deltas[:, 0]) <= radius_px)
                          & (np.abs(deltas[:, 1]) <= radius_px))[0]
        operations += 2 * keypoints.shape[0]
        best_index = -1
        best_distance = MAX_MATCH_DISTANCE + 1
        for index in nearby:
            if int(index) in taken:
                continue
            distance = hamming_distance(
                features.descriptors[index], point.descriptor
            )
            operations += 256
            if distance < best_distance:
                best_distance = distance
                best_index = int(index)
        if best_index >= 0 and best_distance <= MAX_MATCH_DISTANCE:
            taken.add(best_index)
            matches.append(
                Match(index_a=best_index, index_b=point.point_id,
                      distance=best_distance)
            )
    return MatchResult(matches=matches, operations=operations)


def inlier_fraction(result: MatchResult, a: FeatureSet, b: FeatureSet) -> float:
    """Fraction of matches that are true correspondences (synthetic truth).

    Only possible because the synthetic dataset carries landmark ids — used
    by tests to verify the matcher rejects clutter.
    """
    if result.count == 0:
        raise ValueError("no matches to evaluate")
    correct = sum(
        1
        for m in result.matches
        if a.landmark_ids[m.index_a] >= 0
        and a.landmark_ids[m.index_a] == b.landmark_ids[m.index_b]
    )
    return correct / result.count
