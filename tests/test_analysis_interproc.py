"""Tests for the interprocedural analysis engine.

Covers the shared call graph (:mod:`repro.analysis.graph`) and the four
passes built on it: ``inter-units``, ``rng-taint``, ``purity``, and
``hotpath-escape``.  Fixture files pin exact (rule, line) behavior; the
rng-taint cases use virtual paths under ``src/repro/chaos`` because that
pass only fires inside the guarded packages.
"""

import time
from pathlib import Path

from repro.analysis import SourceFile, analyze_paths, analyze_sources
from repro.analysis.graph import Program

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO_ROOT = Path(__file__).resolve().parents[1]


def findings(name, rules=None):
    """(rule, line) pairs reported for one fixture file."""
    violations = analyze_paths([str(FIXTURES / name)], rules=rules)
    return [(v.rule, v.line) for v in violations]


def messages(name, rules=None):
    return [v.message for v in analyze_paths([str(FIXTURES / name)], rules=rules)]


GRAPH_SRC = '''
class Mixer:
    def __init__(self):
        self.gain = 1.0

    def apply(self, x):
        return self.scale(x)

    def scale(self, x):
        return x * self.gain


def helper(x):
    return x + 1


def pipeline(x):
    m = Mixer()
    return m.apply(helper(x))
'''


def _fn(program, suffix):
    return next(fn for fn in program.functions() if fn.qualname.endswith(suffix))


class TestCallGraph:
    def setup_method(self):
        src = SourceFile.parse("src/repro/core/virtual_graph.py", source=GRAPH_SRC)
        self.program = Program.build([src])

    def test_symbol_table_has_every_function(self):
        names = {fn.qualname.split(":")[1] for fn in self.program.functions()}
        assert names == {
            "Mixer.__init__",
            "Mixer.apply",
            "Mixer.scale",
            "helper",
            "pipeline",
        }

    def test_bare_name_typed_local_and_constructor_edges(self):
        pipeline = _fn(self.program, ":pipeline")
        edges = {
            (site.callee.qualname.split(":")[1], site.kind)
            for site in self.program.call_sites(pipeline)
        }
        assert ("helper", "function") in edges
        assert ("Mixer.apply", "method") in edges  # m: typed local
        assert ("Mixer.__init__", "constructor") in edges

    def test_self_method_edge(self):
        apply = _fn(self.program, "Mixer.apply")
        callees = [
            site.callee.qualname.split(":")[1]
            for site in self.program.call_sites(apply)
        ]
        assert callees == ["Mixer.scale"]


class TestUnitsSuffixes:
    """Satellite: the _pa/_kpa/_mah/_wh_kg/_n_m suffixes carry units."""

    def test_exact_findings(self):
        assert findings("units_suffixes.py") == [
            ("units-mismatch", 5),  # Pa + kPa (scale mismatch)
            ("units-mismatch", 6),  # N*m compared with Pa
            ("units-mismatch", 11),  # mAh - Wh/kg
        ]

    def test_same_unit_arithmetic_is_clean(self):
        assert all(line < 15 for _, line in findings("units_suffixes.py"))

    def test_messages_name_the_new_units(self):
        text = "\n".join(messages("units_suffixes.py"))
        for name in ("[Pa]", "[kPa]", "[N*m]", "[mAh]", "[Wh/kg]"):
            assert name in text


class TestInterUnits:
    def test_exact_findings(self):
        assert findings("interunits_bad.py", rules=["inter-units"]) == [
            ("inter-units", 14),  # thrust_n = hover_power_w(...)
            ("inter-units", 19),  # *_g function returns a [kg] value
            ("inter-units", 23),  # mass_kg parameter bound to [s]
        ]

    def test_clean_flows_are_silent(self):
        # power_w assignment (13), [N] chain through the env (27-29).
        lines = [line for _, line in findings("interunits_bad.py")]
        assert 13 not in lines
        assert all(line < 26 for line in lines)

    def test_messages_explain_the_flow(self):
        text = "\n".join(messages("interunits_bad.py", rules=["inter-units"]))
        assert "thrust_n [N] assigned a [W] value" in text
        assert "declared [g] but returns a [kg] value" in text
        assert "parameter 'mass_kg' [kg] bound to a [s] value" in text


TAINT_SRC = '''
import time
import numpy as np


def unseeded_trial(n):
    rng = np.random.default_rng()
    return rng.normal(size=n)


def literal_trial(n):
    rng = np.random.default_rng(42)
    return rng.normal(size=n)


def clock_trial(n):
    rng = np.random.default_rng(int(time.time()))
    return rng.normal(size=n)


def seeded_trial(seed, n):
    rng = np.random.default_rng(seed)
    return rng.normal(size=n)


def derived_trial(seed, trial_index, n):
    rng = np.random.default_rng((seed, trial_index, 17))
    return rng.normal(size=n)


def offset_trial(seed, n):
    rng = np.random.default_rng(seed + 17)
    return rng.normal(size=n)


def helper_rng(seed):
    return np.random.default_rng(seed)


def wrapped_clean(seed, n):
    rng = helper_rng(seed)
    return rng.normal(size=n)


def wrapped_literal(n):
    rng = helper_rng(7)
    return rng.normal(size=n)
'''


def taint_findings(module_path):
    src = SourceFile.parse(module_path, source=TAINT_SRC)
    return [
        (v.rule, v.line, v.message)
        for v in analyze_sources([src], rules=["rng-taint"])
    ]


class TestRngTaint:
    def test_exact_findings_inside_chaos(self):
        found = taint_findings("src/repro/chaos/virtual_trials.py")
        assert [(rule, line) for rule, line, _ in found] == [
            ("rng-taint", 7),  # default_rng()
            ("rng-taint", 12),  # default_rng(42)
            ("rng-taint", 17),  # default_rng(int(time.time()))
            ("rng-taint", 46),  # helper_rng(7): literal through the wrapper
        ]

    def test_messages_classify_the_taint(self):
        text = "\n".join(msg for _, _, msg in taint_findings("src/repro/chaos/virtual_trials.py"))
        assert "constructed without a seed" in text
        assert "hard-coded constant" in text
        assert "ambient state" in text

    def test_param_derived_seeds_are_clean(self):
        # seeded_trial (22), tuple (27), offset (32), wrapper (41): all quiet.
        lines = {line for _, line, _ in taint_findings("src/repro/chaos/virtual_trials.py")}
        assert lines.isdisjoint({22, 27, 32, 41})

    def test_faults_package_is_guarded_too(self):
        assert taint_findings("src/repro/faults/virtual_trials.py")

    def test_unguarded_modules_are_exempt(self):
        # Literal seeds are a legitimate idiom outside chaos/faults.
        assert taint_findings("src/repro/core/virtual_trials.py") == []


class TestPurity:
    def test_exact_findings(self):
        assert findings("purity_bad.py", rules=["purity"]) == [
            ("purity", 11),  # global statement
            ("purity", 18),  # module-level container mutation
            ("purity", 24),  # argument mutation
            ("purity", 30),  # ambient print()
            ("purity", 36),  # transitive: delegate -> stamp
        ]

    def test_messages_carry_the_mechanism(self):
        text = "\n".join(messages("purity_bad.py", rules=["purity"]))
        assert "declares `global _CALLS`" in text
        assert "mutates '_HISTORY' in place via .append()" in text
        assert "stores through 'sample'" in text
        assert "calls print()" in text

    def test_transitive_effect_names_the_callee(self):
        delegate = [
            msg for msg in messages("purity_bad.py", rules=["purity"])
            if "delegate" in msg
        ]
        assert len(delegate) == 1
        assert "(via purity_bad:stamp)" in delegate[0]

    def test_clean_and_memoized_functions_pass(self):
        # clean_math (40), clean_local_mutation (46), clean_transitive (53),
        # and the @memoized_pure cache (58) contribute nothing.
        assert all(line < 40 for _, line in findings("purity_bad.py"))


class TestHotPathEscape:
    def test_exact_findings(self):
        assert findings("escape_bad.py", rules=["hotpath-escape"]) == [
            ("hotpath-escape", 7),  # f-string two calls deep
            ("hotpath-escape", 8),  # print() two calls deep
            ("hotpath-escape", 17),  # comprehension one call deep
        ]

    def test_messages_name_root_and_chain(self):
        text = "\n".join(messages("escape_bad.py", rules=["hotpath-escape"]))
        assert "reachable from @hot_path escape_bad:control_tick" in text
        assert "via escape_bad:middle -> escape_bad:leaf_logger" in text

    def test_clean_chain_and_safe_callee_are_silent(self):
        # clean_leaf/clean_middle (27-32) and @hot_path_safe tolerated (36)
        # are reachable from quiet_tick but report nothing.
        assert all(line < 26 for _, line in findings("escape_bad.py"))


class TestPerformance:
    def test_full_tree_analysis_under_ten_seconds(self):
        start = time.perf_counter()
        analyze_paths([str(REPO_ROOT / "src")])
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0, f"full-tree analysis took {elapsed:.1f}s"
