"""CLI: ``python -m repro.analysis [paths...]``.

Exit status is 0 when clean, 1 when violations are found, 2 on usage
errors — the same contract CI relies on.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.base import ALL_RULES
from repro.analysis.runner import (
    analyze_paths,
    format_human,
    format_json,
    list_rules,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST lint suite: units, determinism, hot-path, config immutability.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return 0

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]
        unknown = [rule for rule in rules if rule not in ALL_RULES]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    try:
        violations = analyze_paths(args.paths, rules=rules)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(format_json(violations) if args.json else format_human(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
