"""Offload fallback chain: off-board SLAM -> onboard SLAM -> dead reckoning.

PR 1's :class:`~repro.autopilot.offload.PoseStalenessWatchdog` flags a
binary fallback.  This supervisor completes the chain the paper's offload
analysis implies: navigation runs on the freshest source that is actually
healthy, stepping *down* when the off-board stream degrades (pose staleness
or ACK silence) and back *up* with hysteresis once the link holds fresh for
a settling period — the same escalate-fast/recover-deliberately convention
as the autopilot failsafe ladder.

Tiers:

* ``OFFBOARD`` — off-board SLAM over the MAVLink link (full rate);
* ``ONBOARD_REDUCED`` — onboard SLAM at a reduced keyframe/BA rate, used
  only while the onboard platform can actually hold frame rate;
* ``DEAD_RECKONING`` — IMU integration only; staleness (and drift) grow
  until a healthier tier returns.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.autopilot.offload import PoseUpdate
from repro.platforms.deadlines import DeadlineReport, slam_frame_deadlines
from repro.platforms.profiles import PlatformProfile
from repro.slam.dataset import FRAME_RATE_HZ
from repro.slam.pipeline import SlamRunResult

#: Keyframe interval the onboard tier runs at (vs the pipeline's 10):
#: halving keyframe/BA rate is what makes onboard SLAM feasible on an RPi.
ONBOARD_REDUCED_KEYFRAME_INTERVAL = 20


class NavTier(enum.IntEnum):
    """Navigation pose sources, best first (larger value = more degraded)."""

    OFFBOARD = 0
    ONBOARD_REDUCED = 1
    DEAD_RECKONING = 2


@dataclass(frozen=True)
class TierTransition:
    """One supervisor step between navigation tiers."""

    time_s: float
    from_tier: NavTier
    to_tier: NavTier
    cause: str

    @property
    def step_down(self) -> bool:
        return self.to_tier > self.from_tier


@dataclass
class OffloadSupervisor:
    """Monitors the off-board pose stream and walks the fallback chain.

    The consumer calls :meth:`note_pose` on every delivered off-board pose
    and :meth:`update` every control cycle.  Degradation steps down
    immediately; recovery steps up only after the stream has stayed fresh
    for ``step_up_hold_s`` (hysteresis, so a flapping link cannot make
    navigation flap with it).
    """

    staleness_limit_s: float = 0.5
    ack_timeout_s: float = 1.5
    step_up_hold_s: float = 2.0
    onboard_healthy: bool = True
    tier: NavTier = NavTier.OFFBOARD
    last_capture_s: float = 0.0
    last_delivery_s: float = 0.0
    transitions: List[TierTransition] = field(default_factory=list)
    _fresh_since_s: Optional[float] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.staleness_limit_s <= 0:
            raise ValueError("staleness limit must be positive")
        if self.ack_timeout_s <= 0:
            raise ValueError("ACK timeout must be positive")
        if self.step_up_hold_s < 0:
            raise ValueError("step-up hold cannot be negative")

    def note_pose(self, capture_s: float, delivery_s: float) -> None:
        """Record one delivered off-board pose (doubles as link ACK)."""
        self.last_capture_s = max(self.last_capture_s, capture_s)
        self.last_delivery_s = max(self.last_delivery_s, delivery_s)

    def note_onboard_health(self, healthy: bool) -> None:
        """Report whether onboard SLAM currently holds frame rate."""
        self.onboard_healthy = healthy

    def stale(self, now_s: float) -> bool:
        return now_s - self.last_capture_s > self.staleness_limit_s

    def silent(self, now_s: float) -> bool:
        return now_s - self.last_delivery_s > self.ack_timeout_s

    def update(self, now_s: float) -> Optional[TierTransition]:
        """Poll; returns the transition taken this cycle, if any."""
        stale = self.stale(now_s)
        silent = self.silent(now_s)
        offboard_ok = not stale and not silent
        if offboard_ok:
            if self._fresh_since_s is None:
                self._fresh_since_s = now_s
        else:
            self._fresh_since_s = None
        held = (
            self._fresh_since_s is not None
            and now_s - self._fresh_since_s >= self.step_up_hold_s
        )

        if self.tier is NavTier.OFFBOARD:
            if not offboard_ok:
                cause = "pose stale" if stale else "ack timeout"
                target = (
                    NavTier.ONBOARD_REDUCED
                    if self.onboard_healthy
                    else NavTier.DEAD_RECKONING
                )
                return self._transition(now_s, target, cause)
        elif self.tier is NavTier.ONBOARD_REDUCED:
            if not self.onboard_healthy:
                return self._transition(
                    now_s, NavTier.DEAD_RECKONING, "onboard overloaded"
                )
            if held:
                return self._transition(now_s, NavTier.OFFBOARD, "link recovered")
        else:  # DEAD_RECKONING
            if held:
                return self._transition(now_s, NavTier.OFFBOARD, "link recovered")
            if self.onboard_healthy:
                return self._transition(
                    now_s, NavTier.ONBOARD_REDUCED, "onboard recovered"
                )
        return None

    def _transition(
        self, now_s: float, to_tier: NavTier, cause: str
    ) -> TierTransition:
        transition = TierTransition(
            time_s=now_s, from_tier=self.tier, to_tier=to_tier, cause=cause
        )
        self.tier = to_tier
        self.transitions.append(transition)
        return transition


def onboard_reduced_deadlines(
    result: SlamRunResult,
    platform: PlatformProfile,
    frame_rate_hz: float = FRAME_RATE_HZ,
    keyframe_interval: int = ONBOARD_REDUCED_KEYFRAME_INTERVAL,
) -> DeadlineReport:
    """Deadline check of the ONBOARD_REDUCED tier on ``platform``.

    The onboard tier amortizes local BA over twice the keyframe interval;
    whether that fits the frame period decides ``onboard_healthy``.
    """
    return slam_frame_deadlines(
        result,
        platform,
        frame_rate_hz=frame_rate_hz,
        keyframe_interval=keyframe_interval,
    )


@dataclass(frozen=True)
class FallbackReport:
    """What the fallback chain did over one replayed offload stream."""

    duration_s: float
    supervised: bool
    transitions: Tuple[TierTransition, ...]
    #: (tier name, seconds spent) pairs, every tier present.
    tier_time_s: Tuple[Tuple[str, float], ...]
    worst_consumer_staleness_s: float
    worst_offboard_staleness_s: float
    staleness_bound_s: float

    @property
    def step_downs(self) -> int:
        return sum(1 for t in self.transitions if t.step_down)

    @property
    def step_ups(self) -> int:
        return sum(1 for t in self.transitions if not t.step_down)

    @property
    def occupancy(self) -> Dict[str, float]:
        return dict(self.tier_time_s)

    @property
    def bounded(self) -> bool:
        """Did the consumer's pose staleness stay within the bound?"""
        return self.worst_consumer_staleness_s <= self.staleness_bound_s


def simulate_fallback_chain(
    updates: Sequence[PoseUpdate],
    duration_s: float,
    supervisor: Optional[OffloadSupervisor] = None,
    onboard_staleness_s: float = 0.1,
    staleness_bound_s: float = 1.0,
    dt_s: float = 0.05,
) -> FallbackReport:
    """Replay an off-board pose stream through the fallback chain.

    ``supervisor=None`` is the unsupervised baseline: navigation pins the
    off-board stream, and every outage shows up as unbounded consumer
    staleness.  With a supervisor, the consumer's staleness is the active
    tier's: the off-board pose age, the onboard processing latency, or the
    time since the last valid pose while dead reckoning.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if dt_s <= 0:
        raise ValueError("dt must be positive")
    if onboard_staleness_s < 0:
        raise ValueError("onboard staleness cannot be negative")
    deliveries = sorted(updates, key=lambda u: u.delivery_time_s)
    tier_time = {tier: 0.0 for tier in NavTier}
    transitions: List[TierTransition] = []
    worst_consumer_s = 0.0
    worst_offboard_s = 0.0
    last_capture_s = 0.0
    last_valid_s = 0.0
    cursor = 0
    steps = max(1, int(round(duration_s / dt_s)))
    for step in range(1, steps + 1):
        now_s = step * dt_s
        while (
            cursor < len(deliveries)
            and deliveries[cursor].delivery_time_s <= now_s
        ):
            update = deliveries[cursor]
            cursor += 1
            last_capture_s = max(last_capture_s, update.capture_time_s)
            if supervisor is not None:
                supervisor.note_pose(update.capture_time_s, update.delivery_time_s)
        offboard_staleness_s = now_s - last_capture_s
        worst_offboard_s = max(worst_offboard_s, offboard_staleness_s)
        if supervisor is not None:
            transition = supervisor.update(now_s)
            if transition is not None:
                transitions.append(transition)
            tier = supervisor.tier
        else:
            tier = NavTier.OFFBOARD
        tier_time[tier] += dt_s
        if tier is NavTier.OFFBOARD:
            consumer_staleness_s = offboard_staleness_s
            last_valid_s = max(last_valid_s, last_capture_s)
        elif tier is NavTier.ONBOARD_REDUCED:
            consumer_staleness_s = onboard_staleness_s
            last_valid_s = now_s - onboard_staleness_s
        else:
            consumer_staleness_s = now_s - last_valid_s
        worst_consumer_s = max(worst_consumer_s, consumer_staleness_s)
    return FallbackReport(
        duration_s=duration_s,
        supervised=supervisor is not None,
        transitions=tuple(transitions),
        tier_time_s=tuple(
            (tier.name, tier_time[tier]) for tier in NavTier
        ),
        worst_consumer_staleness_s=worst_consumer_s,
        worst_offboard_staleness_s=worst_offboard_s,
        staleness_bound_s=staleness_bound_s,
    )
