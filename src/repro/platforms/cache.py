"""Set-associative cache simulator (LRU) for the Figure 15 interference study.

The paper measures, with Linux perf on the RPi, how running SLAM beside the
autopilot degrades LLC and branch behaviour.  We reproduce the mechanism
with a trace-driven cache hierarchy: private L1s per workload context and a
shared LLC whose capacity contention is what the co-run experiment exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            raise ValueError("no accesses recorded; miss rate undefined")
        return self.misses / self.accesses

    def reset(self) -> None:
        self.accesses = 0
        self.misses = 0


class SetAssociativeCache:
    """A classic set-associative LRU cache over 64-bit addresses."""

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int = 64,
        associativity: int = 4,
        next_level: Optional["SetAssociativeCache"] = None,
        name: str = "cache",
        prefetch_next_line: bool = False,
    ):
        if size_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (line_bytes * associativity) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"line*associativity {line_bytes * associativity}"
            )
        self.name = name
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.set_count = size_bytes // (line_bytes * associativity)
        self.next_level = next_level
        self.prefetch_next_line = prefetch_next_line
        self.stats = CacheStats()
        #: Whether the most recent demand miss also missed in next_level —
        #: lets the core charge the DRAM penalty only for demand misses,
        #: not prefetch fills.
        self.last_demand_missed_below = False
        # Per set: dict tag -> last-use stamp (LRU via counter).
        self._sets: Dict[int, Dict[int, int]] = {}
        self._use_counter = 0

    @property
    def size_bytes(self) -> int:
        return self.set_count * self.associativity * self.line_bytes

    def access(self, address: int) -> bool:
        """Access ``address``; returns True on hit.  Misses recurse downward."""
        if address < 0:
            raise ValueError(f"address cannot be negative: {address}")
        self.stats.accesses += 1
        self._use_counter += 1
        line = address // self.line_bytes
        set_index = line % self.set_count
        tag = line // self.set_count
        ways = self._sets.setdefault(set_index, {})
        if tag in ways:
            ways[tag] = self._use_counter
            return True
        self.stats.misses += 1
        self.last_demand_missed_below = False
        if self.next_level is not None:
            self.last_demand_missed_below = not self.next_level.access(address)
        if len(ways) >= self.associativity:
            victim = min(ways, key=ways.get)
            del ways[victim]
        ways[tag] = self._use_counter
        if self.prefetch_next_line:
            self._install(address + self.line_bytes)
        return False

    def _install(self, address: int) -> None:
        """Install a line without charging demand-access statistics.

        Used by the next-line prefetcher; the fill still propagates to the
        next level (a real prefetch occupies LLC bandwidth and capacity).
        """
        line = address // self.line_bytes
        set_index = line % self.set_count
        tag = line // self.set_count
        ways = self._sets.setdefault(set_index, {})
        if tag in ways:
            return
        if self.next_level is not None:
            self.next_level.access(address)
        if len(ways) >= self.associativity:
            victim = min(ways, key=ways.get)
            del ways[victim]
        self._use_counter += 1
        ways[tag] = self._use_counter

    def flush(self) -> None:
        """Invalidate all lines (context-switch cost modeling)."""
        self._sets.clear()

    def reset_stats(self) -> None:
        self.stats.reset()
        if self.next_level is not None:
            self.next_level.reset_stats()


def rpi_cache_hierarchy() -> tuple:
    """(L1D, LLC) roughly shaped like a Raspberry Pi Cortex-A core.

    32 KiB 4-way L1D over a shared 1 MiB 16-way LLC.  Returns the L1 (front
    door) and the LLC (shared level) so co-run experiments can share the LLC
    across contexts.
    """
    llc = SetAssociativeCache(
        size_bytes=1024 * 1024, line_bytes=64, associativity=16, name="LLC"
    )
    l1 = SetAssociativeCache(
        size_bytes=32 * 1024, line_bytes=64, associativity=4,
        next_level=llc, name="L1D", prefetch_next_line=True,
    )
    return l1, llc
