"""Closed-loop flight simulator.

Couples the 6-DOF rigid body, the sensor suite, the EKF, the hierarchical
inner-loop controller, the electrical power model, and the LiPo battery into
one steppable system — the software stand-in for the paper's physical test
drone.

The electrical model is the same momentum-theory chain the design-space
equations use, so simulated power traces (Figure 16b) and the Equations 1-7
predictions agree by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.analysis.markers import hot_path
from repro.control.cascade import HierarchicalController
from repro.control.estimation import InsEkf
from repro.physics import constants
from repro.physics.battery_model import BatteryDepletedError, LipoBattery
from repro.physics.environment import Environment, Wind
from repro.physics.propeller import max_propeller_inch_for_wheelbase
from repro.physics.rigid_body import QuadcopterBody, QuadcopterState
from repro.sensors.suite import SensorSuite


@dataclass(frozen=True)
class DroneModel:
    """Physical parameters of the simulated airframe."""

    mass_kg: float
    wheelbase_mm: float
    battery_cells: int
    battery_capacity_mah: float
    compute_power_w: float = 3.0
    sensors_power_w: float = 1.0
    twr: float = constants.MIN_FLYABLE_TWR

    def __post_init__(self) -> None:
        if self.mass_kg <= 0:
            raise ValueError(f"mass must be positive, got {self.mass_kg}")
        if self.wheelbase_mm <= 0:
            raise ValueError("wheelbase must be positive")
        if self.battery_cells <= 0 or self.battery_capacity_mah <= 0:
            raise ValueError("battery configuration must be positive")
        if self.twr < 1.0:
            raise ValueError(f"TWR below 1 cannot fly, got {self.twr}")

    @property
    def arm_length_m(self) -> float:
        return self.wheelbase_mm / 1000.0 / 2.0

    @property
    def propeller_inch(self) -> float:
        return max_propeller_inch_for_wheelbase(self.wheelbase_mm)

    @property
    def max_thrust_per_motor_n(self) -> float:
        return constants.grams_to_newtons(
            self.twr * self.mass_kg * 1000.0 / 4.0
        )

    @classmethod
    def from_design(cls, evaluation, compute_power_w: Optional[float] = None):
        """Build a simulator model from a :class:`DesignEvaluation`."""
        return cls(
            mass_kg=evaluation.total_weight_g / 1000.0,
            wheelbase_mm=evaluation.propeller_inch * 45.0,
            battery_cells=int(
                round(evaluation.battery_voltage_v / constants.LIPO_CELL_NOMINAL_V)
            ),
            battery_capacity_mah=evaluation.usable_energy_wh
            / constants.LIPO_DRAIN_LIMIT
            / evaluation.battery_voltage_v
            * 1000.0,
            compute_power_w=(
                evaluation.compute_power_w
                if compute_power_w is None
                else compute_power_w
            ),
            sensors_power_w=evaluation.sensors_power_w,
        )


@dataclass
class SimSample:
    """One telemetry sample of the running simulation."""

    time_s: float
    position_m: np.ndarray
    velocity_m_s: np.ndarray
    euler_rad: np.ndarray
    motor_thrusts_n: np.ndarray
    electrical_power_w: float
    battery_voltage_v: float
    battery_soc: float


class FlightSimulator:
    """Steppable closed-loop drone simulation."""

    def __init__(
        self,
        model: DroneModel,
        physics_rate_hz: float = 500.0,
        use_ekf: bool = False,
        wind: Optional[Wind] = None,
        environment: Optional[Environment] = None,
        record_rate_hz: float = 50.0,
    ):
        if physics_rate_hz < 100.0:
            raise ValueError(
                f"physics rate below 100 Hz destabilizes the thrust loop: "
                f"{physics_rate_hz}"
            )
        self.model = model
        self.physics_rate_hz = physics_rate_hz
        self.use_ekf = use_ekf
        self.body = QuadcopterBody(
            mass_kg=model.mass_kg,
            arm_length_m=model.arm_length_m,
            environment=environment or Environment(),
            wind=wind,
        )
        self.controller = HierarchicalController(
            mass_kg=model.mass_kg,
            arm_length_m=model.arm_length_m,
            inertia_kg_m2=self.body.inertia_kg_m2,
            max_thrust_per_motor_n=model.max_thrust_per_motor_n,
        )
        self.sensors = SensorSuite()
        self.ekf = InsEkf()
        self.battery = LipoBattery(
            cells=model.battery_cells,
            capacity_mah=model.battery_capacity_mah,
            c_rating=40.0,
        )
        self.time_s = 0.0
        self.samples: List[SimSample] = []
        self.depleted = False
        self.ekf_resets = 0
        self._record_period_s = 1.0 / record_rate_hz
        self._next_record_s = 0.0
        self._hover_eff = constants.HOVER_OVERALL_EFFICIENCY
        # Momentum-theory denominator sqrt(2*rho*A), hoisted out of the
        # per-tick power evaluation (the propeller never changes in flight).
        self._induced_power_denom = math.sqrt(
            2.0
            * constants.AIR_DENSITY_SEA_LEVEL_KG_M3
            * constants.propeller_disk_area_m2(model.propeller_inch)
        )
        self._last_current_a = 0.0
        # Per-tick scratch: the voltage-limited thrust command and the
        # momentum-theory power chain reuse these instead of allocating
        # fresh 4-vectors every 2 ms.
        self._thrust_scratch = np.zeros(4)
        self._power_scratch = np.zeros(4)
        self._power_root_scratch = np.zeros(4)

    # -- target passthrough ------------------------------------------------------

    def goto(self, position_m, yaw_rad: float = 0.0) -> None:
        self.controller.set_position_target(np.asarray(position_m, float), yaw_rad)

    def set_velocity(self, velocity_m_s, yaw_rad: float = 0.0) -> None:
        self.controller.set_velocity_target(np.asarray(velocity_m_s, float), yaw_rad)

    def inject_position_fix(self, position_m, noise_m: float = 0.05) -> None:
        """Feed an external position estimate (e.g. a SLAM pose) to the EKF.

        This is how GPS-denied flight stays bounded: the outer loop's SLAM
        produces poses that correct the inertial drift — the integration the
        paper's drone performs between its SLAM stack and the autopilot.
        """
        if not self.use_ekf:
            raise RuntimeError("position fixes require the EKF (use_ekf=True)")
        if noise_m <= 0:
            raise ValueError(f"noise must be positive, got {noise_m}")
        original = self.ekf.gps_noise_m
        self.ekf.gps_noise_m = noise_m
        try:
            self.ekf.update_gps(np.asarray(position_m, dtype=float))
        finally:
            self.ekf.gps_noise_m = original

    # -- stepping -----------------------------------------------------------------

    @hot_path
    def electrical_power_w(self, motor_thrusts_n: np.ndarray) -> float:
        """Instantaneous electrical power (W) at the given rotor thrusts.

        Vectorized momentum-theory chain: ``T*sqrt(T)/sqrt(2*rho*A)`` over
        all four rotors at once.  Bit-identical to summing
        :func:`repro.physics.propeller.hover_electrical_power_w` per motor
        (``np.sum`` adds a four-element array in the same left-to-right
        order the loop did); the equality is pinned by the test suite.
        """
        thrusts_n = np.maximum(
            np.asarray(motor_thrusts_n, dtype=float), 0.0, out=self._power_scratch
        )
        root = np.sqrt(thrusts_n, out=self._power_root_scratch)
        ideal_w = np.multiply(thrusts_n, root, out=root)
        np.divide(ideal_w, self._induced_power_denom, out=ideal_w)
        np.divide(ideal_w, self._hover_eff * 1.0, out=ideal_w)
        propulsion = float(np.sum(ideal_w))
        return propulsion + self.model.compute_power_w + self.model.sensors_power_w

    @hot_path
    def step(self) -> None:
        """Advance one physics tick: sense -> estimate -> control -> actuate."""
        dt = 1.0 / self.physics_rate_hz
        self.time_s += dt
        state = self.body.state

        readings = self.sensors.poll(state, dt)
        if self.use_ekf:
            # The EKF raises FloatingPointError the moment its state goes
            # non-finite; roll back to the pre-tick (finite) state instead
            # of flying on NaN — degrade, don't abort.
            checkpoint = self.ekf.state.copy()
            try:
                if readings.imu_fired:
                    self.ekf.predict(
                        readings.accel_body_m_s2,
                        readings.gyro_rad_s,
                        self.sensors.imu.period_s,
                    )
                if readings.gps_position_m is not None:
                    self.ekf.update_gps(readings.gps_position_m)
                if readings.baro_altitude_m is not None:
                    self.ekf.update_barometer(readings.baro_altitude_m)
                if readings.mag_yaw_rad is not None:
                    self.ekf.update_magnetometer(readings.mag_yaw_rad)
            except FloatingPointError:
                self.ekf.reset(checkpoint)
                self.ekf_resets += 1
            estimated = self._estimated_state(state)
        else:
            estimated = state

        thrusts = self.controller.tick(estimated, dt)
        # Voltage sag limits available thrust: rotor speed tops out at
        # Kv * V, and thrust goes as speed squared — a tired pack flies
        # noticeably softer (the end-of-flight weakness every pilot knows).
        voltage_ratio = self.battery.terminal_voltage_v(
            self._last_current_a
        ) / (self.battery.cells * constants.LIPO_CELL_NOMINAL_V * 1.135)
        thrust_ceiling = self.model.max_thrust_per_motor_n * min(
            1.0, voltage_ratio
        ) ** 2
        thrusts = np.minimum(thrusts, thrust_ceiling, out=self._thrust_scratch)
        self.body.step(thrusts, dt)

        power = self.electrical_power_w(thrusts)
        current = power / max(1.0, self.battery.terminal_voltage_v(0.0))
        self._last_current_a = current
        try:
            self.battery.draw(
                min(current, self.battery.max_continuous_current_a), dt
            )
        except BatteryDepletedError:
            self.depleted = True

        if self.time_s + 1e-12 >= self._next_record_s:
            self._next_record_s = self.time_s + self._record_period_s
            self.samples.append(
                SimSample(
                    time_s=self.time_s,
                    position_m=state.position_m.copy(),
                    velocity_m_s=state.velocity_m_s.copy(),
                    euler_rad=state.euler_rad.copy(),
                    motor_thrusts_n=thrusts.copy(),
                    electrical_power_w=power,
                    battery_voltage_v=self.battery.terminal_voltage_v(current),
                    battery_soc=self.battery.state_of_charge,
                )
            )

    def run_for(self, duration_s: float) -> None:
        """Step the simulation for ``duration_s`` simulated seconds."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        steps = int(round(duration_s * self.physics_rate_hz))
        for _ in range(steps):
            self.step()

    @hot_path
    def _estimated_state(self, truth: QuadcopterState) -> QuadcopterState:
        """EKF estimate packaged as a state for the controller.

        Angular velocity comes straight from the gyro path (truth here) —
        rate feedback is not part of the 9-state estimate, matching how
        flight stacks feed raw gyro to the rate PIDs.
        """
        from repro.physics.rigid_body import quaternion_from_euler

        estimated = QuadcopterState(
            position_m=self.ekf.position_m.copy(),
            velocity_m_s=self.ekf.velocity_m_s.copy(),
            quaternion=quaternion_from_euler(*self.ekf.attitude_rad),
            angular_velocity_rad_s=truth.angular_velocity_rad_s.copy(),
        )
        return estimated

    # -- derived metrics -----------------------------------------------------------

    def average_power_w(self, since_s: float = 0.0) -> float:
        """Mean recorded electrical power after ``since_s``."""
        powers = [s.electrical_power_w for s in self.samples if s.time_s >= since_s]
        if not powers:
            raise ValueError("no samples recorded in the requested window")
        return float(np.mean(powers))

    def hover_position_error_m(self, target_m: np.ndarray, since_s: float) -> float:
        """RMS position error against ``target_m`` after ``since_s``."""
        target = np.asarray(target_m, dtype=float)
        errors = [
            float(np.linalg.norm(s.position_m - target))
            for s in self.samples
            if s.time_s >= since_s
        ]
        if not errors:
            raise ValueError("no samples recorded in the requested window")
        return float(np.sqrt(np.mean(np.square(errors))))
