"""Hot-path escape analysis: body rules over the transitive call closure.

``hot-callee`` (in :mod:`repro.analysis.hotpath`) polices the *edge*: a
``@hot_path`` function may only call marked functions.  But an unmarked
callee's body is otherwise never scanned — a comprehension two calls below
the control loop costs exactly as much as one in it.  This pass closes
that hole: starting from every ``@hot_path`` root it walks the resolved
call graph (breadth-first, skipping ``@hot_path_safe`` subtrees and
constructor edges, honoring the ``raise``/``assert`` exemptions) and runs
the shared :class:`~repro.analysis.hotpath.HotBodyScanner` over each
*unmarked* function it reaches.  Findings are reported as
``hotpath-escape`` at the hazard in the callee's file, with the hot root
and the call chain in the message so the fix site is obvious.

Marked callees are skipped — ``@hot_path`` bodies are already checked
directly, and ``@hot_path_safe`` means "intentionally off the fast path".
Each function is reported once even when reachable from several roots.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Checker, SourceFile, Violation
from repro.analysis.graph import FunctionInfo, Program
from repro.analysis.hotpath import HotBodyScanner

#: Safety valve: real call graphs here are tiny, but a bound keeps a
#: pathological input from turning the BFS quadratic.
_MAX_DEPTH = 12


class EscapeChecker(Checker):
    """Scan unmarked functions reachable from ``@hot_path`` roots."""

    rules = ("hotpath-escape",)

    def check(
        self, files: Sequence[SourceFile], program: Optional[Program] = None
    ) -> List[Violation]:
        if program is None:
            program = Program.build(files)
        scanners: Dict[str, HotBodyScanner] = {}
        reported: Set[str] = set()
        out: List[Violation] = []
        for root in program.functions():
            if root.hot:
                self._walk(out, program, root, scanners, reported)
        return out

    def _walk(
        self,
        out: List[Violation],
        program: Program,
        root: FunctionInfo,
        scanners: Dict[str, HotBodyScanner],
        reported: Set[str],
    ) -> None:
        queue: List[Tuple[FunctionInfo, Tuple[str, ...], int]] = [(root, (), 0)]
        visited: Set[str] = {root.qualname}
        while queue:
            fn, chain, depth = queue.pop(0)
            if depth >= _MAX_DEPTH:
                continue
            scanner = self._scanner(scanners, fn)
            for site in program.call_sites(fn):
                if site.kind == "constructor":
                    continue
                if id(site.call) not in scanner.eligible_calls:
                    continue
                callee = site.callee
                if callee.safe or callee.qualname in visited:
                    continue
                visited.add(callee.qualname)
                if callee.hot:
                    continue  # a hot callee is a root of its own walk
                next_chain = chain + (callee.qualname,)
                if callee.qualname not in reported:
                    reported.add(callee.qualname)
                    self._report(out, root, callee, next_chain, scanners)
                queue.append((callee, next_chain, depth + 1))

    def _report(
        self,
        out: List[Violation],
        root: FunctionInfo,
        callee: FunctionInfo,
        chain: Tuple[str, ...],
        scanners: Dict[str, HotBodyScanner],
    ) -> None:
        via = " -> ".join(chain)
        for issue in self._scanner(scanners, callee).issues:
            self.emit(
                out,
                callee.src,
                "hotpath-escape",
                issue.node,
                f"{issue.message} — reachable from @hot_path "
                f"{root.qualname} via {via}",
            )

    @staticmethod
    def _scanner(
        scanners: Dict[str, HotBodyScanner], fn: FunctionInfo
    ) -> HotBodyScanner:
        scanner = scanners.get(fn.qualname)
        if scanner is None:
            scanner = HotBodyScanner().scan(fn.node)
            scanners[fn.qualname] = scanner
        return scanner
