"""Tests for SLAM-map-based path planning (outer-loop autonomy)."""

import numpy as np
import pytest

from repro.slam.dataset import load_sequence
from repro.slam.pipeline import SlamPipeline
from repro.slam.planning import (
    OccupancyGrid,
    PlanningError,
    grid_from_landmarks,
    plan_path,
)


def simple_grid(width=20, height=20, resolution=0.5) -> OccupancyGrid:
    return OccupancyGrid(
        origin_m=np.zeros(3), resolution_m=resolution, width=width,
        height=height,
    )


class TestOccupancyGrid:
    def test_cell_roundtrip(self):
        grid = simple_grid()
        row, col = grid.cell_of(np.array([3.2, 4.7, 0.0]))
        center = grid.center_of(row, col)
        assert abs(center[0] - 3.2) <= grid.resolution_m
        assert abs(center[1] - 4.7) <= grid.resolution_m

    def test_outside_grid_raises(self):
        grid = simple_grid()
        with pytest.raises(ValueError):
            grid.cell_of(np.array([100.0, 0.0, 0.0]))

    def test_mark_occupied_inflates(self):
        grid = simple_grid()
        grid.mark_occupied(np.array([5.0, 5.0, 0.0]), inflation_m=1.0)
        row, col = grid.cell_of(np.array([5.0, 5.0, 0.0]))
        assert not grid.is_free(row, col)
        assert not grid.is_free(row + 1, col)  # inflated neighbor

    def test_landmark_outside_grid_ignored(self):
        grid = simple_grid()
        grid.mark_occupied(np.array([500.0, 0.0, 0.0]), inflation_m=1.0)
        assert grid.occupied_fraction == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OccupancyGrid(origin_m=np.zeros(3), resolution_m=0.0, width=5,
                          height=5)


class TestGridFromLandmarks:
    def test_altitude_band_filters(self):
        landmarks = np.array([
            [2.0, 2.0, 1.0],   # in band -> obstacle
            [4.0, 4.0, 10.0],  # above band -> ignored
        ])
        grid = grid_from_landmarks(landmarks, altitude_band_m=(0.5, 2.5))
        row, col = grid.cell_of(np.array([2.0, 2.0, 0.0]))
        assert not grid.is_free(row, col)
        row, col = grid.cell_of(np.array([4.0, 4.0, 0.0]))
        assert grid.is_free(row, col)

    def test_margin_gives_free_border(self):
        landmarks = np.array([[0.0, 0.0, 1.0]])
        grid = grid_from_landmarks(landmarks, margin_m=3.0)
        assert grid.width * grid.resolution_m >= 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_from_landmarks(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            grid_from_landmarks(np.zeros((5, 3)), altitude_band_m=(2.0, 1.0))


class TestAStar:
    def test_straight_line_in_empty_grid(self):
        grid = simple_grid()
        plan = plan_path(
            grid, np.array([0.5, 0.5, 0.0]), np.array([9.0, 0.5, 0.0])
        )
        assert len(plan.waypoints_m) == 2  # simplified to start/goal
        assert plan.path_length_m == pytest.approx(8.5, abs=1.0)

    def test_detours_around_wall(self):
        grid = simple_grid()
        # A wall across the middle with a gap at the top.
        for row in range(0, 15):
            grid.occupied[row, 10] = True
        plan = plan_path(
            grid, np.array([1.0, 1.0, 0.0]), np.array([9.0, 1.0, 0.0])
        )
        direct = 8.0
        assert plan.path_length_m > direct + 2.0  # forced detour
        # The path never crosses an occupied cell.
        for waypoint in plan.waypoints_m:
            row, col = grid.cell_of(waypoint)
            assert grid.is_free(row, col)

    def test_no_path_raises(self):
        grid = simple_grid()
        grid.occupied[:, 10] = True  # full wall
        with pytest.raises(PlanningError, match="no path"):
            plan_path(
                grid, np.array([1.0, 1.0, 0.0]), np.array([9.0, 1.0, 0.0])
            )

    def test_occupied_endpoints_raise(self):
        grid = simple_grid()
        grid.mark_occupied(np.array([1.0, 1.0, 0.0]), inflation_m=0.0)
        with pytest.raises(PlanningError, match="start"):
            plan_path(
                grid, np.array([1.0, 1.0, 0.0]), np.array([5.0, 5.0, 0.0])
            )

    def test_waypoints_carry_altitude(self):
        grid = simple_grid()
        plan = plan_path(
            grid, np.array([0.5, 0.5, 0.0]), np.array([5.0, 5.0, 0.0]),
            altitude_m=2.0,
        )
        assert all(w[2] == 2.0 for w in plan.waypoints_m)

    def test_operations_accounted(self):
        grid = simple_grid()
        plan = plan_path(
            grid, np.array([0.5, 0.5, 0.0]), np.array([9.0, 9.0, 0.0])
        )
        assert plan.operations > 0
        assert plan.expanded_nodes > 0


class TestSlamToPlanPipeline:
    def test_plan_through_slam_map(self):
        """End-to-end outer loop: SLAM map -> occupancy grid -> A* plan."""
        sequence = load_sequence("MH01")
        pipeline = SlamPipeline(sequence)
        pipeline.run(max_frames=40)
        points = np.stack(
            [p.position_m for p in pipeline.slam_map.points.values()]
        )
        grid = grid_from_landmarks(
            points, resolution_m=0.5, altitude_band_m=(0.8, 1.6),
            inflation_m=0.3,
        )
        assert 0.0 < grid.occupied_fraction < 0.9
        # Find any free start/goal pair and plan between them.
        free_cells = np.argwhere(~grid.occupied)
        start = grid.center_of(*free_cells[0])
        goal = grid.center_of(*free_cells[-1])
        plan = plan_path(
            grid,
            np.append(start, 0.0),
            np.append(goal, 0.0),
            altitude_m=1.2,
        )
        assert plan.path_length_m > 0.0
        assert len(plan.waypoints_m) >= 2
