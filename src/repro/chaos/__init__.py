"""Chaos campaign engine: generated fault campaigns with safety verdicts.

The robustness layer above the hand-written scenario matrix
(:mod:`repro.faults.scenarios`): four cooperating pieces that together turn
"does the stack survive these ten faults?" into "what is the failure
surface of the stack under compound, unanticipated fault combinations?"

* :mod:`repro.chaos.campaign` — samples reproducible compound
  :class:`~repro.faults.schedule.FaultSchedule`\\ s from
  ``(campaign_seed, trial_index)``;
* :mod:`repro.chaos.invariants` — the declarative per-tick
  :class:`SafetyMonitor` with first-violation attribution;
* :mod:`repro.chaos.recorder` — the black-box
  :class:`FlightRecorder` ring buffer and JSON crash traces;
* :mod:`repro.chaos.runner` / :mod:`repro.chaos.triage` — deterministic
  trial execution, bit-for-bit replay verification, parallel campaign
  fan-out, and failure-bucket aggregation.

Run ``python -m repro.chaos --help`` for the campaign CLI.
"""

from repro.chaos.campaign import (
    CHAOS_KINDS,
    CampaignConfig,
    TrialSpec,
    generate_campaign,
    generate_trial,
    sample_schedule,
    trial_rng,
)
from repro.chaos.invariants import (
    Invariant,
    SafetyLimits,
    SafetyMonitor,
    Violation,
    invariant_catalog,
)
from repro.chaos.ensemble import LaneHarness, run_trials_ensemble
from repro.chaos.recorder import BlackBoxTrace, FlightRecorder, TickRecord
from repro.chaos.runner import (
    CampaignRun,
    TrialResult,
    VERDICT_CRASH,
    VERDICT_SAFE,
    VERDICT_VIOLATION,
    replay_trial,
    run_campaign,
    run_campaign_supervised,
    run_trial,
    run_trial_by_index,
    verify_replay,
)
from repro.chaos.triage import (
    CampaignReport,
    FailureBucket,
    percentile,
    triage,
)

__all__ = [
    "CHAOS_KINDS",
    "CampaignConfig",
    "TrialSpec",
    "generate_campaign",
    "generate_trial",
    "sample_schedule",
    "trial_rng",
    "Invariant",
    "SafetyLimits",
    "SafetyMonitor",
    "Violation",
    "invariant_catalog",
    "BlackBoxTrace",
    "FlightRecorder",
    "LaneHarness",
    "TickRecord",
    "run_trials_ensemble",
    "CampaignRun",
    "TrialResult",
    "VERDICT_CRASH",
    "VERDICT_SAFE",
    "VERDICT_VIOLATION",
    "replay_trial",
    "run_campaign",
    "run_campaign_supervised",
    "run_trial",
    "run_trial_by_index",
    "verify_replay",
    "CampaignReport",
    "FailureBucket",
    "percentile",
    "triage",
]
