"""Canned fault scenarios and the closed-loop scenario runner.

Each scenario flies the same waypoint mission through a different corner of
the reliability envelope (GPS outage, link blackout, battery faults, motor
degradation, offload-node stalls) and reports survival, recovery time, and
mission-completion degradation.  Runs are deterministic: the same scenario
and seed reproduce the same metrics bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.autopilot.arducopter import Autopilot, FlightMode, MissionItem
from repro.autopilot.mavlink import Link, MessageType
from repro.autopilot.offload import PoseStalenessWatchdog
from repro.faults.envelope import DEFAULT_CRASH_ENVELOPE, CrashEnvelope
from repro.faults.injectors import FaultInjector
from repro.faults.schedule import FaultKind, FaultSchedule
from repro.sim.simulator import DroneModel, FlightSimulator

#: The shared mission: an 8 m square at 4 m altitude, ~25 s of flying —
#: long enough that mid-mission faults abort real work.
DEFAULT_WAYPOINTS = (
    (8.0, 0.0, 4.0),
    (8.0, 8.0, 4.0),
    (0.0, 8.0, 4.0),
    (0.0, 0.0, 4.0),
)
DEFAULT_MODEL = dict(
    mass_kg=1.071,
    wheelbase_mm=450.0,
    battery_cells=3,
    battery_capacity_mah=3000.0,
)
TAKEOFF_ALTITUDE_M = 4.0
TAKEOFF_SETTLE_S = 6.0
CONTROL_STEP_S = 0.1
HEARTBEAT_PERIOD_S = 1.0


@dataclass(frozen=True)
class Scenario:
    """One mission x fault-schedule combination."""

    name: str
    schedule_factory: Callable[[], FaultSchedule]
    waypoints: Tuple[Tuple[float, float, float], ...] = DEFAULT_WAYPOINTS
    duration_s: float = 40.0
    #: EKF-in-the-loop flight (required for GPS/IMU fault scenarios).
    use_ekf: bool = False
    #: Attach a pose-staleness watchdog fed by a synthetic offload stream.
    offload: bool = False
    #: GCS heartbeats flowing (arms the autopilot's link-loss watchdog).
    heartbeats: bool = False

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive: {self.duration_s}")
        if not self.waypoints:
            raise ValueError("scenario needs at least one waypoint")


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome metrics of one scenario run."""

    scenario: str
    survived: bool
    crash_reason: Optional[str]
    final_failsafe: str
    final_mode: str
    mission_completion: float
    #: Time from first fault onset to the autopilot's first reaction
    #: (DEGRADED or FAILSAFE event); None if it never reacted.
    recovery_time_s: Optional[float]
    min_soc: float
    landed: bool
    events: Tuple[Tuple[float, str], ...]

    def metrics(self) -> Tuple:
        """The determinism fingerprint: identical seeds must reproduce this
        tuple exactly (used by benchmarks/test_fault_scenarios.py)."""
        return (
            self.scenario,
            self.survived,
            self.crash_reason,
            self.final_failsafe,
            self.final_mode,
            self.mission_completion,
            self.recovery_time_s,
            self.min_soc,
            self.landed,
            self.events,
        )


def run_scenario(
    scenario: Scenario,
    seed: int = 7,
    physics_rate_hz: float = 400.0,
    envelope: CrashEnvelope = DEFAULT_CRASH_ENVELOPE,
) -> ScenarioResult:
    """Fly one scenario to completion and measure the outcome."""
    model = DroneModel(**DEFAULT_MODEL)
    sim = FlightSimulator(
        model, physics_rate_hz=physics_rate_hz, use_ekf=scenario.use_ekf
    )
    link = Link(seed=seed)
    autopilot = Autopilot(sim, link=link)
    if scenario.offload:
        autopilot.pose_watchdog = PoseStalenessWatchdog()
    schedule = scenario.schedule_factory()
    injector = FaultInjector(autopilot, schedule)

    min_soc = sim.battery.state_of_charge
    crash: Optional[str] = None
    next_heartbeat_s = 0.0

    def tick() -> bool:
        """One control cycle; returns False once the vehicle is lost."""
        nonlocal min_soc, crash, next_heartbeat_s
        now = sim.time_s
        injector.apply(now)
        if scenario.heartbeats and now + 1e-9 >= next_heartbeat_s:
            next_heartbeat_s = now + HEARTBEAT_PERIOD_S
            link.send(MessageType.HEARTBEAT)
        if scenario.offload and not injector.offload_blocked(now):
            autopilot.pose_watchdog.note_pose(now)
        autopilot.update(CONTROL_STEP_S)
        min_soc = min(min_soc, sim.battery.state_of_charge)
        crash = envelope.crash_reason(sim)
        return crash is None

    autopilot.arm()
    autopilot.takeoff(TAKEOFF_ALTITUDE_M)
    elapsed = 0.0
    alive = True
    while alive and elapsed < TAKEOFF_SETTLE_S:
        alive = tick()
        elapsed += CONTROL_STEP_S
    if alive:
        autopilot.upload_mission(
            [MissionItem(np.asarray(w, dtype=float)) for w in scenario.waypoints]
        )
        autopilot.set_mode(FlightMode.AUTO)
        while alive and elapsed < scenario.duration_s:
            alive = tick()
            elapsed += CONTROL_STEP_S

    completion = autopilot.mission_progress
    altitude = float(sim.body.state.position_m[2])
    return ScenarioResult(
        scenario=scenario.name,
        survived=crash is None,
        crash_reason=crash,
        final_failsafe=autopilot.failsafe.name,
        final_mode=autopilot.mode.value,
        mission_completion=completion,
        recovery_time_s=_recovery_time(autopilot, schedule),
        min_soc=min_soc,
        landed=altitude < 0.3,
        events=tuple(autopilot.events),
    )


def _recovery_time(autopilot: Autopilot, schedule: FaultSchedule) -> Optional[float]:
    onset = schedule.first_fault_s
    if math.isinf(onset):
        return None
    for time_s, text in autopilot.events:
        if time_s + 1e-9 >= onset and (
            text.startswith("FAILSAFE") or text.startswith("DEGRADED")
        ):
            return time_s - onset
    return None


# -- canned scenarios -------------------------------------------------------------


def low_battery_scenario(duration_s: float = 40.0) -> Scenario:
    """A cell goes bad mid-mission: SoC drops below the low threshold and the
    autopilot must abort to FAILSAFE_RTL."""
    return Scenario(
        name="low-battery",
        schedule_factory=lambda: FaultSchedule().add(
            FaultKind.BATTERY_DRAIN, start_s=14.5, end_s=15.0, fraction=0.76
        ),
        duration_s=duration_s,
    )


def critical_battery_scenario(duration_s: float = 40.0) -> Scenario:
    """Worse capacity loss: SoC lands below critical -> FAILSAFE_LAND."""
    return Scenario(
        name="critical-battery",
        schedule_factory=lambda: FaultSchedule().add(
            FaultKind.BATTERY_DRAIN, start_s=12.0, end_s=12.5, fraction=0.83
        ),
        duration_s=duration_s,
    )


def gps_loss_scenario(duration_s: float = 40.0) -> Scenario:
    """GPS denied for 14 s: dead-reckon (DEGRADED), then FAILSAFE_LAND once
    drift is unbounded."""
    return Scenario(
        name="gps-loss",
        schedule_factory=lambda: FaultSchedule().add(
            FaultKind.GPS_LOSS, start_s=12.0, end_s=26.0
        ),
        duration_s=duration_s,
        use_ekf=True,
    )


def link_blackout_scenario(duration_s: float = 40.0) -> Scenario:
    """Total uplink outage: heartbeats stop, the link-loss watchdog fires
    FAILSAFE_RTL after the timeout."""
    return Scenario(
        name="link-blackout",
        schedule_factory=lambda: FaultSchedule().add(
            FaultKind.LINK_BLACKOUT, start_s=10.0, end_s=26.0
        ),
        duration_s=duration_s,
        heartbeats=True,
    )


def motor_degradation_scenario(duration_s: float = 40.0) -> Scenario:
    """One rotor loses 20% of its thrust ceiling (prop damage): enough
    margin remains to finish the mission flying soft."""
    return Scenario(
        name="motor-degradation",
        schedule_factory=lambda: FaultSchedule().add(
            FaultKind.MOTOR_DEGRADATION,
            start_s=10.0,
            motor_index=0,
            health=0.8,
        ),
        duration_s=duration_s,
    )


def motor_out_scenario(duration_s: float = 40.0) -> Scenario:
    """Severe single-rotor failure (40% ceiling): the thrust-saturation
    failsafe must catch the authority loss and force a LAND — whether the
    airframe survives the descent is up to the physics."""
    return Scenario(
        name="motor-out",
        schedule_factory=lambda: FaultSchedule().add(
            FaultKind.MOTOR_DEGRADATION,
            start_s=10.0,
            motor_index=0,
            health=0.4,
        ),
        duration_s=duration_s,
    )


def esc_thermal_scenario(duration_s: float = 40.0) -> Scenario:
    """All four ESCs in thermal protection at 105 degC for 20 s: uniform
    derating leaves hover margin but clips maneuvering authority."""
    return Scenario(
        name="esc-thermal",
        schedule_factory=lambda: FaultSchedule().add(
            FaultKind.ESC_THERMAL, start_s=8.0, end_s=28.0, temperature_c=105.0
        ),
        duration_s=duration_s,
    )


def imu_glitch_scenario(duration_s: float = 40.0) -> Scenario:
    """A 4 s IMU bias glitch while flying on the EKF estimate."""
    return Scenario(
        name="imu-glitch",
        schedule_factory=lambda: FaultSchedule().add(
            FaultKind.IMU_BIAS,
            start_s=12.0,
            end_s=16.0,
            accel_bias_m_s2=0.8,
            gyro_bias_rad_s=0.03,
        ),
        duration_s=duration_s,
        use_ekf=True,
    )


def offload_stall_scenario(duration_s: float = 40.0) -> Scenario:
    """The off-board SLAM node stalls for 6 s: the staleness watchdog must
    fall back to onboard SLAM (DEGRADED) and recover when poses resume."""
    return Scenario(
        name="offload-stall",
        schedule_factory=lambda: FaultSchedule().add(
            FaultKind.OFFLOAD_STALL, start_s=10.0, end_s=16.0
        ),
        duration_s=duration_s,
        offload=True,
    )


def combined_stress_scenario(duration_s: float = 40.0) -> Scenario:
    """Several simultaneous degradations: bursty link, battery sag, frozen
    barometer — the compounding-failure regime."""
    return Scenario(
        name="combined-stress",
        schedule_factory=lambda: FaultSchedule()
        .add(
            FaultKind.LINK_BURST,
            start_s=8.0,
            end_s=30.0,
            p_good_to_bad=0.1,
            p_bad_to_good=0.2,
            loss_bad=0.95,
        )
        .add(FaultKind.BATTERY_SAG, start_s=10.0, end_s=30.0, resistance_ohm=0.06)
        .add(FaultKind.BARO_FREEZE, start_s=14.0, end_s=24.0),
        duration_s=duration_s,
        heartbeats=True,
    )


def standard_scenarios() -> Tuple[Scenario, ...]:
    """The scenario matrix the robustness benchmark flies."""
    return (
        low_battery_scenario(),
        critical_battery_scenario(),
        gps_loss_scenario(),
        link_blackout_scenario(),
        motor_degradation_scenario(),
        motor_out_scenario(),
        esc_thermal_scenario(),
        imu_glitch_scenario(),
        offload_stall_scenario(),
        combined_stress_scenario(),
    )
