"""Figure 11: commercial small drones — hovering/maneuvering power, heavy
computation contribution, and flight time."""

import pytest

from repro.core.validation import (
    baseline_compute_share_range,
    figure11_small_drone_study,
)

from conftest import print_table


def test_fig11_small_drone_study(benchmark):
    rows_data = benchmark.pedantic(
        figure11_small_drone_study, rounds=5, iterations=1
    )

    rows = [
        (
            row.name,
            f"{row.hovering_power_w:.0f} W",
            f"{row.maneuvering_power_w:.0f} W",
            f"{row.heavy_compute_share_hovering:.1%}",
            f"{row.flight_time_min:.0f} min",
        )
        for row in rows_data
    ]
    print_table(
        "Figure 11 — commercial small drones",
        ("drone", "hover power", "maneuver power", "heavy compute %", "flight time"),
        rows,
    )
    low, high = baseline_compute_share_range()
    print(f"baseline (non-heavy) hover compute share: {low:.1%} .. {high:.1%} "
          f"(paper: 2-7%)")

    # Shape: six drones in the paper's order, Mambo first.
    assert [r.name for r in rows_data][0] == "Parrot Mambo"
    assert len(rows_data) == 6

    # Paper: heavy compute pushes the share to 10-20% on the smallest.
    shares = {r.name: r.heavy_compute_share_hovering for r in rows_data}
    assert shares["Parrot Mambo"] > 0.10
    assert max(shares.values()) < 0.45

    # Paper: up to ~+5 minutes (or ~20%) recoverable on small drones.
    mambo = rows_data[0]
    recoverable = mambo.flight_time_min * shares["Parrot Mambo"] / (
        1 - shares["Parrot Mambo"]
    )
    assert 0.5 < recoverable < 6.0

    # Maneuvering power always exceeds hovering power.
    for row in rows_data:
        assert row.maneuvering_power_w > row.hovering_power_w
