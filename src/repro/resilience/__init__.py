"""Outer-loop resilience: relocalization, fallback chain, thermal degradation.

This layer sits strictly above ``slam``, ``autopilot``, ``platforms``,
``faults``, and ``control`` in the dependency DAG: it supervises those
subsystems under fault injection and quantifies what each degradation
tier costs in the paper's design-space currency.
"""

from repro.resilience.guards import (
    MapCheckpoint,
    NumericalFaultError,
    assert_finite,
)
from repro.resilience.relocalization import (
    LossEpisode,
    RelocalizationLadder,
    RelocalizationReport,
    Remedy,
    SupervisedSlamPipeline,
)
from repro.resilience.study import (
    DegradationOutcome,
    TierCost,
    degradation_study,
    fallback_tier_costs,
    run_perception_scenario,
)
from repro.resilience.supervisor import (
    FallbackReport,
    NavTier,
    OffloadSupervisor,
    ONBOARD_REDUCED_KEYFRAME_INTERVAL,
    TierTransition,
    onboard_reduced_deadlines,
    simulate_fallback_chain,
)
from repro.resilience.thermal import (
    ComputeThermalProfile,
    DeadlineFrameSkipPolicy,
    ThermalDeadlineStudy,
    ThermalGovernor,
    rpi4_compute_thermal,
    thermal_deadline_study,
    tx2_compute_thermal,
)

__all__ = [
    "MapCheckpoint",
    "NumericalFaultError",
    "assert_finite",
    "LossEpisode",
    "RelocalizationLadder",
    "RelocalizationReport",
    "Remedy",
    "SupervisedSlamPipeline",
    "DegradationOutcome",
    "TierCost",
    "degradation_study",
    "fallback_tier_costs",
    "run_perception_scenario",
    "FallbackReport",
    "NavTier",
    "OffloadSupervisor",
    "ONBOARD_REDUCED_KEYFRAME_INTERVAL",
    "TierTransition",
    "onboard_reduced_deadlines",
    "simulate_fallback_chain",
    "ComputeThermalProfile",
    "DeadlineFrameSkipPolicy",
    "ThermalDeadlineStudy",
    "ThermalGovernor",
    "rpi4_compute_thermal",
    "thermal_deadline_study",
    "tx2_compute_thermal",
]
