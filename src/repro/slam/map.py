"""SLAM map: keyframes, map points, and covisibility bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import numpy as np


@dataclass
class MapPoint:
    """A 3-D landmark estimate with its reference descriptor."""

    point_id: int
    position_m: np.ndarray
    descriptor: np.ndarray
    observations: Set[int] = field(default_factory=set)  # keyframe ids

    def __post_init__(self) -> None:
        self.position_m = np.asarray(self.position_m, dtype=float)
        if self.position_m.shape != (3,):
            raise ValueError("map point position must be a 3-vector")

    @property
    def observation_count(self) -> int:
        return len(self.observations)


@dataclass
class Keyframe:
    """A camera pose holding 2-D observations of map points."""

    keyframe_id: int
    position_m: np.ndarray
    yaw_rad: float
    #: map-point id -> observed pixel (u, v)
    observations: Dict[int, Tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.position_m = np.asarray(self.position_m, dtype=float)
        if self.position_m.shape != (3,):
            raise ValueError("keyframe position must be a 3-vector")

    @property
    def pose_params(self) -> np.ndarray:
        """[x, y, z, yaw] — the 4-DOF pose parameterization used throughout."""
        return np.concatenate([self.position_m, [self.yaw_rad]])

    def set_pose_params(self, params: np.ndarray) -> None:
        params = np.asarray(params, dtype=float)
        if params.shape != (4,):
            raise ValueError("pose parameters must be [x, y, z, yaw]")
        self.position_m = params[0:3].copy()
        self.yaw_rad = float(params[3])


class SlamMap:
    """The global map: id-indexed keyframes and map points."""

    def __init__(self):
        self.keyframes: Dict[int, Keyframe] = {}
        self.points: Dict[int, MapPoint] = {}
        self._next_keyframe_id = 0

    @property
    def keyframe_count(self) -> int:
        return len(self.keyframes)

    @property
    def point_count(self) -> int:
        return len(self.points)

    def add_keyframe(
        self,
        position_m: np.ndarray,
        yaw_rad: float,
        observations: Dict[int, Tuple[float, float]],
    ) -> Keyframe:
        """Insert a keyframe and register its observations on map points."""
        keyframe = Keyframe(
            keyframe_id=self._next_keyframe_id,
            position_m=np.asarray(position_m, dtype=float),
            yaw_rad=yaw_rad,
            observations=dict(observations),
        )
        self.keyframes[keyframe.keyframe_id] = keyframe
        self._next_keyframe_id += 1
        for point_id in observations:
            if point_id not in self.points:
                raise KeyError(f"observation of unknown map point {point_id}")
            self.points[point_id].observations.add(keyframe.keyframe_id)
        return keyframe

    def add_point(
        self, point_id: int, position_m: np.ndarray, descriptor: np.ndarray
    ) -> MapPoint:
        if point_id in self.points:
            raise KeyError(f"map point {point_id} already exists")
        point = MapPoint(
            point_id=point_id,
            position_m=np.asarray(position_m, dtype=float),
            descriptor=np.asarray(descriptor, dtype=np.uint8),
        )
        self.points[point_id] = point
        return point

    def recent_keyframes(self, count: int) -> List[Keyframe]:
        """The most recent ``count`` keyframes (the local-BA window)."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        ids = sorted(self.keyframes)[-count:]
        return [self.keyframes[i] for i in ids]

    def points_seen_by(self, keyframes: List[Keyframe]) -> List[MapPoint]:
        """Map points observed by any of the given keyframes."""
        ids: Set[int] = set()
        for keyframe in keyframes:
            ids.update(keyframe.observations.keys())
        return [self.points[i] for i in sorted(ids)]

    def descriptor_matrix(self) -> Tuple[np.ndarray, np.ndarray]:
        """(descriptors [N, 32], point ids [N]) for map-wide matching."""
        if not self.points:
            return (
                np.empty((0, 32), dtype=np.uint8),
                np.empty(0, dtype=np.int64),
            )
        ids = sorted(self.points)
        descriptors = np.stack([self.points[i].descriptor for i in ids])
        return descriptors, np.asarray(ids, dtype=np.int64)

    def covisibility_edges(self, min_shared: int = 10) -> List[Tuple[int, int, int]]:
        """Keyframe pairs sharing at least ``min_shared`` map points.

        Returns (kf_a, kf_b, shared_count) tuples — the covisibility graph
        ORB-SLAM uses to scope local BA and loop closing.
        """
        if min_shared <= 0:
            raise ValueError(f"min_shared must be positive, got {min_shared}")
        edges = []
        ids = sorted(self.keyframes)
        observation_sets = {
            i: set(self.keyframes[i].observations.keys()) for i in ids
        }
        for position, kf_a in enumerate(ids):
            for kf_b in ids[position + 1:]:
                shared = len(observation_sets[kf_a] & observation_sets[kf_b])
                if shared >= min_shared:
                    edges.append((kf_a, kf_b, shared))
        return edges

    def trajectory(self) -> np.ndarray:
        """Estimated keyframe positions in id order, shape (K, 3)."""
        ids = sorted(self.keyframes)
        if not ids:
            raise ValueError("map has no keyframes")
        return np.stack([self.keyframes[i].position_m for i in ids])
