"""Retry, timeout, and degradation knobs for the supervised pool.

One frozen dataclass holds every tunable the supervisor consults, so a
policy can be attached to a :class:`repro.core.parallel.SweepRunnerConfig`
and shipped through pickles unchanged.  The defaults are conservative:
bounded retries with capped exponential backoff, no wall-clock or
heartbeat timeout unless the caller opts in (simulator chunks have wildly
different legitimate durations), and degradation thresholds low enough
that a genuinely sick pool collapses to inline execution instead of
burning retries forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ExecutionPolicy:
    """Supervision controls for :class:`repro.exec.supervised.SupervisedPool`."""

    #: Attempts per chunk (first run included) before bisection/quarantine.
    max_attempts: int = 3
    #: Wall-clock budget per chunk, measured from its first heartbeat.
    #: ``None`` disables the wall-clock hang check.
    chunk_timeout_s: Optional[float] = None
    #: Budget between two heartbeats (one heartbeat is written per item).
    #: ``None`` disables the stall check.
    heartbeat_timeout_s: Optional[float] = None
    #: Supervisor wake-up period while futures are in flight.
    poll_interval_s: float = 0.05
    #: Capped exponential backoff between retry waves.
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 2.0
    #: Pool disruptions (worker death or hang kill) before halving workers.
    degrade_after: int = 2
    #: Pool disruptions before giving up on processes entirely.
    inline_after: int = 4
    #: Quarantine poison items instead of re-raising their exception.
    quarantine: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive: {self.max_attempts}")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ValueError(
                f"chunk_timeout_s must be positive: {self.chunk_timeout_s}"
            )
        if self.heartbeat_timeout_s is not None and self.heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be positive: {self.heartbeat_timeout_s}"
            )
        if self.poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be positive: {self.poll_interval_s}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff seconds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )
        if self.degrade_after <= 0 or self.inline_after <= 0:
            raise ValueError("degradation thresholds must be positive")
        if self.inline_after < self.degrade_after:
            raise ValueError(
                "inline_after must be >= degrade_after "
                f"({self.inline_after} < {self.degrade_after})"
            )

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based), capped exponential."""
        if attempt <= 0:
            return 0.0
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
