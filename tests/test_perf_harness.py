"""Unit tests for the perf-regression timing harness.

``benchmarks/perf`` is not an importable package (it's a script directory),
so the harness module is loaded by file path.  These tests cover the
measurement mechanics and the baseline compare logic — the actual workload
timings are exercised by the CI ``perf`` job, not here.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_HARNESS_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "perf" / "harness.py"
)


def _load_harness():
    spec = importlib.util.spec_from_file_location("perf_harness", _HARNESS_PATH)
    module = importlib.util.module_from_spec(spec)
    # Register before exec: dataclass processing resolves the module by name.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


harness = _load_harness()


class TestTimeCallable:
    def test_runs_and_reports_sane_statistics(self):
        calls = []
        result = harness.time_callable(
            "noop", lambda: calls.append(1), warmup=2, runs=5
        )
        assert len(calls) == 7  # warmup + timed
        assert result.name == "noop"
        assert result.runs == 5
        assert result.warmup == 2
        assert 0.0 <= result.min_s <= result.median_s
        assert result.median_s <= result.mean_s * 5  # loose sanity bound

    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError, match="run"):
            harness.time_callable("x", lambda: None, runs=0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError, match="warmup"):
            harness.time_callable("x", lambda: None, warmup=-1)


def _result(name: str, median_s: float) -> "harness.TimingResult":
    return harness.TimingResult(
        name=name,
        median_s=median_s,
        min_s=median_s * 0.9,
        mean_s=median_s * 1.05,
        runs=9,
        warmup=3,
    )


class TestBaselineRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        harness.write_baseline(
            path, [_result("workload_a", 0.010)], extra={"speedup": 11.5}
        )
        payload = harness.load_baseline(path)
        assert payload["schema"] == harness.SCHEMA_VERSION
        assert payload["speedup"] == 11.5
        assert payload["workloads"]["workload_a"]["median_s"] == 0.010

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": 999, "workloads": {}}))
        with pytest.raises(ValueError, match="schema"):
            harness.load_baseline(path)


class TestCompareToBaseline:
    def _baseline(self, median_s: float) -> dict:
        return {
            "schema": harness.SCHEMA_VERSION,
            "workloads": {"w": {"median_s": median_s}},
        }

    def test_within_tolerance_passes(self):
        regressions = harness.compare_to_baseline(
            [_result("w", 0.0120)], self._baseline(0.0100), tolerance=0.25
        )
        assert regressions == []

    def test_regression_beyond_tolerance_flagged(self):
        regressions = harness.compare_to_baseline(
            [_result("w", 0.0130)], self._baseline(0.0100), tolerance=0.25
        )
        assert len(regressions) == 1
        assert "w" in regressions[0]

    def test_faster_than_baseline_passes(self):
        assert (
            harness.compare_to_baseline(
                [_result("w", 0.005)], self._baseline(0.0100)
            )
            == []
        )

    def test_workload_missing_from_baseline_skipped(self):
        baseline = {"schema": harness.SCHEMA_VERSION, "workloads": {}}
        assert harness.compare_to_baseline([_result("new", 1.0)], baseline) == []

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            harness.compare_to_baseline([], self._baseline(1.0), tolerance=-0.1)


class TestCommittedBaselines:
    """The committed BENCH files must stay loadable and self-consistent."""

    @pytest.mark.parametrize("name", ["BENCH_sweep.json", "BENCH_sim.json"])
    def test_baseline_loads(self, name):
        payload = harness.load_baseline(_HARNESS_PATH.parent / name)
        assert payload["workloads"], f"{name} has no workloads"
        for workload, stats in payload["workloads"].items():
            assert stats["median_s"] > 0.0, workload

    def test_sweep_baseline_records_target_speedup(self):
        payload = harness.load_baseline(_HARNESS_PATH.parent / "BENCH_sweep.json")
        assert payload["speedup"] >= 10.0
        assert payload["grid_points"] == 261


class TestCountArrayConstructions:
    def test_counts_named_constructors(self):
        import numpy as np

        def workload():
            np.zeros(3)
            np.array([1.0, 2.0])
            np.empty(2)
            np.ones(4)
            np.full(2, 7.0)

        assert harness.count_array_constructions(workload) == 5

    def test_zero_for_construction_free_workload(self):
        import numpy as np

        buffer = np.zeros(3)
        assert harness.count_array_constructions(
            lambda: np.add(buffer, 1.0, out=buffer)
        ) == 0

    def test_restores_constructors_after_exception(self):
        import numpy as np

        originals = tuple(
            getattr(np, name) for name in harness._CONSTRUCTOR_NAMES
        )

        def boom():
            raise RuntimeError("workload failed")

        with pytest.raises(RuntimeError, match="workload failed"):
            harness.count_array_constructions(boom)
        restored = tuple(
            getattr(np, name) for name in harness._CONSTRUCTOR_NAMES
        )
        assert restored == originals

    def test_ensemble_baseline_loads_when_committed(self):
        path = _HARNESS_PATH.parent / "BENCH_ensemble.json"
        payload = harness.load_baseline(path)
        assert payload["speedup"] >= 5.0
        assert payload["trials"] == 64
        assert payload["fingerprints_equal"] is True
        assert payload["verify_replay_ok"] is True
        assert payload["allocation_budget_ok"] is True
