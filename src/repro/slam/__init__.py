"""Feature-based SLAM pipeline on synthetic EuRoC-like sequences
(paper Section 5's workload)."""

from repro.slam.bundle_adjustment import (
    BaResult,
    bundle_adjust,
    global_bundle_adjust,
    local_bundle_adjust,
)
from repro.slam.dataset import (
    EUROC_SEQUENCES,
    FRAME_RATE_HZ,
    CachedSequence,
    CameraModel,
    Difficulty,
    Frame,
    SequenceSpec,
    SyntheticSequence,
    all_sequence_names,
    cached_sequence,
    clear_sequence_cache,
    load_sequence,
)
from repro.slam.features import (
    FeatureSet,
    OrbExtractor,
    hamming_distance,
    hamming_distance_matrix,
)
from repro.slam.map import Keyframe, MapPoint, SlamMap
from repro.slam.matching import (
    Match,
    MatchResult,
    inlier_fraction,
    match_against_map,
    match_features,
)
from repro.slam.metrics import (
    MapQuality,
    absolute_trajectory_error_m,
    map_quality,
    relative_pose_error_m,
)
from repro.slam.planning import (
    OccupancyGrid,
    PlanningError,
    PlanResult,
    grid_from_landmarks,
    plan_path,
)
from repro.slam.pipeline import (
    SlamPipeline,
    SlamRunResult,
    Stage,
    StageBreakdown,
    TrackingOutcome,
    run_slam,
    triangulate_midpoint,
)
from repro.slam.tracking import TrackingLostError, TrackingResult, track_pose

__all__ = [
    "BaResult",
    "bundle_adjust",
    "global_bundle_adjust",
    "local_bundle_adjust",
    "EUROC_SEQUENCES",
    "FRAME_RATE_HZ",
    "CameraModel",
    "Difficulty",
    "Frame",
    "SequenceSpec",
    "SyntheticSequence",
    "CachedSequence",
    "all_sequence_names",
    "cached_sequence",
    "clear_sequence_cache",
    "load_sequence",
    "FeatureSet",
    "OrbExtractor",
    "hamming_distance",
    "hamming_distance_matrix",
    "Keyframe",
    "MapPoint",
    "SlamMap",
    "Match",
    "MatchResult",
    "inlier_fraction",
    "match_against_map",
    "match_features",
    "MapQuality",
    "absolute_trajectory_error_m",
    "map_quality",
    "relative_pose_error_m",
    "OccupancyGrid",
    "PlanningError",
    "PlanResult",
    "grid_from_landmarks",
    "plan_path",
    "SlamPipeline",
    "SlamRunResult",
    "Stage",
    "StageBreakdown",
    "TrackingOutcome",
    "run_slam",
    "triangulate_midpoint",
    "TrackingLostError",
    "TrackingResult",
    "track_pose",
]
