"""Triage and aggregation: turn hundreds of trials into a failure map.

Raw campaign output is a list of per-trial verdicts; what an engineer needs
is *which failure modes exist and how big each is*.  The triage layer
buckets every failed trial by the triple that identifies its mode —
``violated invariant x active fault kinds x failsafe state at violation`` —
and aggregates campaign-level statistics: survival rate, failsafe
reaction-time (MTTR) percentiles, and the mission-completion distribution.
Buckets are sorted biggest-first, so the top of the report is the next bug
to fix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.runner import (
    TrialResult,
    VERDICT_CRASH,
    VERDICT_SAFE,
    VERDICT_VIOLATION,
)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Deterministic linear-interpolation percentile (no numpy dtype drift)."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass(frozen=True)
class FailureBucket:
    """One failure mode: its identifying triple and its members."""

    invariant: str
    active_faults: Tuple[str, ...]
    failsafe: str
    trial_indices: Tuple[int, ...]

    @property
    def count(self) -> int:
        return len(self.trial_indices)

    @property
    def key(self) -> Tuple[str, Tuple[str, ...], str]:
        return (self.invariant, self.active_faults, self.failsafe)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "active_faults": list(self.active_faults),
            "failsafe": self.failsafe,
            "count": self.count,
            "trial_indices": list(self.trial_indices),
        }


@dataclass(frozen=True)
class CampaignReport:
    """Campaign-level aggregation of a chaos run."""

    campaign_seed: int
    trials: int
    safe: int
    violations: int
    crashes: int
    buckets: Tuple[FailureBucket, ...]
    #: Failsafe reaction-time (fault onset -> first reaction) percentiles.
    mttr_p50_s: Optional[float]
    mttr_p90_s: Optional[float]
    mttr_p99_s: Optional[float]
    completion_mean: float
    completion_p50: float
    completion_min: float
    invariant_counts: Tuple[Tuple[str, int], ...]

    @property
    def survival_rate(self) -> float:
        """Fraction of trials with no crash (violations still count as
        surviving: the vehicle came home, the contract did not)."""
        return 1.0 - self.crashes / self.trials

    @property
    def clean_rate(self) -> float:
        """Fraction of trials with no violation of any kind."""
        return self.safe / self.trials

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign_seed": self.campaign_seed,
            "trials": self.trials,
            "safe": self.safe,
            "violations": self.violations,
            "crashes": self.crashes,
            "survival_rate": self.survival_rate,
            "clean_rate": self.clean_rate,
            "mttr_p50_s": self.mttr_p50_s,
            "mttr_p90_s": self.mttr_p90_s,
            "mttr_p99_s": self.mttr_p99_s,
            "completion_mean": self.completion_mean,
            "completion_p50": self.completion_p50,
            "completion_min": self.completion_min,
            "invariant_counts": [
                {"invariant": name, "count": count}
                for name, count in self.invariant_counts
            ],
            "buckets": [bucket.to_dict() for bucket in self.buckets],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def triage(results: Sequence[TrialResult]) -> CampaignReport:
    """Bucket failures and aggregate campaign statistics."""
    if not results:
        raise ValueError("cannot triage an empty campaign")
    campaign_seed = results[0].spec.campaign_seed
    safe = sum(1 for result in results if result.verdict == VERDICT_SAFE)
    crashes = sum(1 for result in results if result.verdict == VERDICT_CRASH)
    violations = sum(
        1 for result in results if result.verdict == VERDICT_VIOLATION
    )

    members: Dict[Tuple[str, Tuple[str, ...], str], List[int]] = {}
    invariant_tallies: Dict[str, int] = {}
    for result in results:
        if result.violation is None:
            continue
        violation = result.violation
        key = (violation.invariant, violation.active_faults, violation.failsafe)
        members.setdefault(key, []).append(result.spec.trial_index)
        invariant_tallies[violation.invariant] = (
            invariant_tallies.get(violation.invariant, 0) + 1
        )
    buckets = tuple(
        sorted(
            (
                FailureBucket(
                    invariant=key[0],
                    active_faults=key[1],
                    failsafe=key[2],
                    trial_indices=tuple(sorted(indices)),
                )
                for key, indices in members.items()
            ),
            key=lambda bucket: (-bucket.count, bucket.key),
        )
    )

    reactions = sorted(
        result.recovery_time_s
        for result in results
        if result.recovery_time_s is not None
    )
    completions = [result.mission_completion for result in results]
    return CampaignReport(
        campaign_seed=campaign_seed,
        trials=len(results),
        safe=safe,
        violations=violations,
        crashes=crashes,
        buckets=buckets,
        mttr_p50_s=percentile(reactions, 0.50) if reactions else None,
        mttr_p90_s=percentile(reactions, 0.90) if reactions else None,
        mttr_p99_s=percentile(reactions, 0.99) if reactions else None,
        completion_mean=sum(completions) / len(completions),
        completion_p50=percentile(completions, 0.50),
        completion_min=min(completions),
        invariant_counts=tuple(
            sorted(invariant_tallies.items(), key=lambda item: (-item[1], item[0]))
        ),
    )
