"""Tests for the extension features: INDI gust rejection, outer-loop
deadline analysis, MAVLink computation offloading, and battery C-rating
feasibility."""

import numpy as np
import pytest

from repro.autopilot.mavlink import Link
from repro.autopilot.offload import (
    OffboardComputeNode,
    evaluate_offload,
)
from repro.control.attitude import AttitudeController
from repro.control.indi import IndiRateController
from repro.core import equations
from repro.core.design import DroneDesign
from repro.platforms.deadlines import (
    corun_deadline_comparison,
    slam_frame_deadlines,
)
from repro.platforms.profiles import fpga_profile, rpi4_profile, tx2_profile
from repro.physics.environment import Wind
from repro.physics.rigid_body import QuadcopterBody


def _gust_rejection_rms(controller_kind: str, rate_hz: float = 500.0,
                        duration_s: float = 4.0) -> float:
    """Hold zero attitude under gusty torque disturbances; return RMS roll."""
    body = QuadcopterBody(mass_kg=1.0, arm_length_m=0.225)
    inertia = body.inertia_kg_m2
    dt = 1.0 / rate_hz
    rng = np.random.default_rng(6)
    gust_torque = 0.0
    if controller_kind == "indi":
        indi = IndiRateController(inertia_kg_m2=inertia)
    else:
        pid = AttitudeController(inertia_kg_m2=inertia)
    rolls = []
    hover = body.hover_thrust_per_motor_n
    from repro.control.mixer import MotorMixer

    mixer = MotorMixer(arm_length_m=0.225, max_thrust_per_motor_n=hover * 4)
    steps = int(duration_s * rate_hz)
    for _ in range(steps):
        # Ornstein-Uhlenbeck gust torque about the roll axis.
        gust_torque = 0.995 * gust_torque + 0.02 * rng.standard_normal()
        state = body.state
        if controller_kind == "indi":
            rate_setpoint = -6.0 * state.euler_rad  # outer angle P loop
            torque = indi.update(rate_setpoint, state.angular_velocity_rad_s, dt)
        else:
            torque = pid.update(
                np.zeros(3), state.euler_rad, state.angular_velocity_rad_s, dt
            )
        thrusts = mixer.mix(4 * hover, torque)
        body.step(thrusts, dt)
        # Inject the gust directly as angular acceleration.
        body.state.angular_velocity_rad_s[0] += (
            gust_torque / inertia[0, 0] * dt
        )
        rolls.append(float(body.state.euler_rad[0]))
    return float(np.sqrt(np.mean(np.square(rolls))))


class TestIndi:
    def test_holds_rate_setpoint(self):
        body = QuadcopterBody(mass_kg=1.0, arm_length_m=0.225)
        indi = IndiRateController(inertia_kg_m2=body.inertia_kg_m2)
        dt = 1.0 / 500.0
        setpoint = np.array([1.0, 0.0, 0.0])
        omega = np.zeros(3)
        for _ in range(1000):
            torque = indi.update(setpoint, omega, dt)
            omega = omega + np.linalg.solve(body.inertia_kg_m2, torque) * dt
        assert omega[0] == pytest.approx(1.0, abs=0.1)

    def test_rejects_gusts_at_500hz(self):
        """The paper's INDI claim: stabilization under gusts at 500 Hz."""
        rms = _gust_rejection_rms("indi", rate_hz=500.0)
        assert rms < 0.08  # stays within ~5 degrees RMS

    def test_indi_beats_plain_pid_under_gusts(self):
        indi_rms = _gust_rejection_rms("indi", rate_hz=500.0)
        pid_rms = _gust_rejection_rms("pid", rate_hz=500.0)
        assert indi_rms < pid_rms

    def test_torque_clipped(self):
        indi = IndiRateController(
            inertia_kg_m2=np.eye(3) * 0.01, max_torque_nm=0.1
        )
        torque = indi.update(np.array([100.0, 0, 0]), np.zeros(3), 0.002)
        assert np.all(np.abs(torque) <= 0.1)

    def test_cheap_compute(self):
        indi = IndiRateController(inertia_kg_m2=np.eye(3) * 0.01)
        # Even at 500 Hz, INDI is a rounding error on a Cortex-M.
        assert indi.flops_per_update * 500 < 1e6

    def test_validation(self):
        with pytest.raises(ValueError):
            IndiRateController(inertia_kg_m2=np.eye(2))
        indi = IndiRateController(inertia_kg_m2=np.eye(3) * 0.01)
        with pytest.raises(ValueError):
            indi.update(np.zeros(3), np.zeros(3), 0.0)


class TestInnerLoopRateSufficiency:
    def test_rate_increase_plateaus(self):
        """The paper's core inner-loop claim: beyond a few hundred Hz the
        update rate buys nothing — physics, not compute, is the limit."""
        rms_100 = _gust_rejection_rms("indi", rate_hz=100.0, duration_s=3.0)
        rms_500 = _gust_rejection_rms("indi", rate_hz=500.0, duration_s=3.0)
        rms_1000 = _gust_rejection_rms("indi", rate_hz=1000.0, duration_s=3.0)
        # 100 -> 500 Hz helps (or at least does not hurt)...
        assert rms_500 <= rms_100 * 1.2
        # ...but 500 -> 1000 Hz is within noise of each other.
        assert abs(rms_1000 - rms_500) < 0.5 * max(rms_500, rms_1000)


class TestDeadlines:
    def test_dedicated_rpi_meets_frame_deadlines(self, slam_mh01):
        report = slam_frame_deadlines(slam_mh01, rpi4_profile())
        assert report.miss_rate < 0.30
        assert report.worst_latency_s < 1.0

    def test_corun_increases_misses(self, slam_mh01, interference):
        dedicated, shared = corun_deadline_comparison(
            slam_mh01, rpi4_profile(), interference.ipc_degradation
        )
        assert shared.misses >= dedicated.misses
        assert shared.mean_latency_s > dedicated.mean_latency_s

    def test_fpga_eliminates_misses(self, slam_mh01):
        report = slam_frame_deadlines(slam_mh01, fpga_profile())
        assert report.meets_realtime

    def test_validation(self, slam_mh01):
        with pytest.raises(ValueError):
            slam_frame_deadlines(slam_mh01, rpi4_profile(), frame_rate_hz=0.0)
        with pytest.raises(ValueError):
            corun_deadline_comparison(slam_mh01, rpi4_profile(), 0.5)


class TestOffload:
    def test_faster_node_lower_staleness(self, slam_mh01):
        rpi = evaluate_offload(slam_mh01, rpi4_profile())
        tx2 = evaluate_offload(slam_mh01, tx2_profile())
        assert tx2.mean_staleness_s < rpi.mean_staleness_s

    def test_latency_adds_to_staleness(self, slam_mh01):
        near = evaluate_offload(slam_mh01, tx2_profile(), one_way_latency_s=0.005)
        far = evaluate_offload(slam_mh01, tx2_profile(), one_way_latency_s=0.100)
        assert far.mean_staleness_s > near.mean_staleness_s + 0.150

    def test_lossy_link_drops_and_widens_gaps(self, slam_mh01):
        clean = evaluate_offload(slam_mh01, tx2_profile(), loss_probability=0.0)
        lossy = evaluate_offload(slam_mh01, tx2_profile(), loss_probability=0.4)
        assert lossy.dropped > clean.dropped
        assert lossy.delivery_rate < 0.8
        assert lossy.worst_update_gap_s > clean.worst_update_gap_s

    def test_staleness_at_least_round_trip(self, slam_mh01):
        report = evaluate_offload(
            slam_mh01, fpga_profile(), one_way_latency_s=0.020
        )
        assert report.mean_staleness_s >= 0.040

    def test_validation(self, slam_mh01):
        with pytest.raises(ValueError):
            OffboardComputeNode(
                platform=rpi4_profile(), link=Link(), one_way_latency_s=-1.0
            )


class TestCRatingFeasibility:
    def test_required_c_rating_formula(self):
        # 40 A total from a 2 Ah pack with 1.2 safety -> 24C.
        assert equations.required_c_rating(2000.0, 40.0) == pytest.approx(24.0)

    def test_reported_in_evaluation(self):
        evaluation = DroneDesign(
            wheelbase_mm=450.0, battery_cells=3, battery_capacity_mah=3000.0,
        ).evaluate()
        assert 0.0 < evaluation.required_battery_c_rating < 60.0

    def test_tiny_pack_on_big_drone_infeasible(self):
        """A 300 mAh pack cannot feed a 2 kg drone's motors."""
        design = DroneDesign(
            wheelbase_mm=450.0, battery_cells=3, battery_capacity_mah=300.0,
            payload_g=1500.0,
        )
        assert not design.is_feasible()

    def test_validation(self):
        with pytest.raises(ValueError):
            equations.required_c_rating(0.0, 10.0)
        with pytest.raises(ValueError):
            equations.required_c_rating(1000.0, 10.0, safety_factor=0.5)
