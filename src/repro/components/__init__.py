"""Synthetic commercial-component substrate.

Batteries, ESCs, frames, motors, propellers, flight controllers, external
sensors, and a commercial-drone reference database — everything the paper's
component census (Section 3.1, Table 4) provides.
"""

from repro.components.base import (
    Component,
    ComponentFamily,
    LinearFit,
    linear_fit,
    manufacturer_names,
)
from repro.components.battery import (
    FIG7_WEIGHT_FITS,
    BatterySpec,
    battery_weight_g,
    make_battery,
)
from repro.components.catalog import (
    ComponentCatalog,
    generate_batteries,
    generate_catalog,
    generate_escs,
    generate_frames,
    generate_motors,
)
from repro.components.commercial import (
    COMMERCIAL_DRONES,
    FIGURE11_DRONES,
    CommercialDrone,
    drones_for_wheelbase,
    find_drone,
)
from repro.components.compute import (
    ADVANCED_CHIP_POWER_W,
    BASIC_CHIP_POWER_W,
    BoardClass,
    ComputeBoard,
    boards_by_class,
    find_board,
    table4_flight_controllers,
)
from repro.components.esc import (
    FIG8A_WEIGHT_FITS,
    EscClass,
    EscSpec,
    esc_set_weight_g,
    esc_unit_weight_g,
    make_esc,
)
from repro.components.frame import (
    FIG8B_LARGE_FIT,
    FIG8B_SMALL_FIT,
    PAPER_WHEELBASES_MM,
    FrameSpec,
    frame_weight_g,
    make_frame,
)
from repro.components.motor import MotorSpec, design_motor_product
from repro.components.propeller import (
    PropellerSpec,
    make_propeller,
    propeller_set_weight_g,
)
from repro.components.sensors import (
    SensorKind,
    SensorProduct,
    find_sensor,
    sensors_by_kind,
    table4_external_sensors,
)

__all__ = [
    "Component",
    "ComponentFamily",
    "LinearFit",
    "linear_fit",
    "manufacturer_names",
    "FIG7_WEIGHT_FITS",
    "BatterySpec",
    "battery_weight_g",
    "make_battery",
    "ComponentCatalog",
    "generate_batteries",
    "generate_catalog",
    "generate_escs",
    "generate_frames",
    "generate_motors",
    "COMMERCIAL_DRONES",
    "FIGURE11_DRONES",
    "CommercialDrone",
    "drones_for_wheelbase",
    "find_drone",
    "ADVANCED_CHIP_POWER_W",
    "BASIC_CHIP_POWER_W",
    "BoardClass",
    "ComputeBoard",
    "boards_by_class",
    "find_board",
    "table4_flight_controllers",
    "FIG8A_WEIGHT_FITS",
    "EscClass",
    "EscSpec",
    "esc_set_weight_g",
    "esc_unit_weight_g",
    "make_esc",
    "FIG8B_LARGE_FIT",
    "FIG8B_SMALL_FIT",
    "PAPER_WHEELBASES_MM",
    "FrameSpec",
    "frame_weight_g",
    "make_frame",
    "MotorSpec",
    "design_motor_product",
    "PropellerSpec",
    "make_propeller",
    "propeller_set_weight_g",
    "SensorKind",
    "SensorProduct",
    "find_sensor",
    "sensors_by_kind",
    "table4_external_sensors",
]
