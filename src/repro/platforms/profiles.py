"""Platform profiles and the Figure 17 / Table 5 studies.

A :class:`PlatformProfile` prices each SLAM pipeline stage (operation
counts from :class:`repro.slam.pipeline.StageBreakdown`) into seconds using
per-stage sustained throughput.  Throughputs are *stage-specific* because
that is the physics of the paper's result: on the RPi, bundle adjustment is
scalar, pointer-heavy, and cache-hostile (low sustained ops/s) while
feature extraction is NEON-streaming (high ops/s) — which is why BA is ~90%
of RPi execution time even though it is a smaller share of raw operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.platforms.accelerator import navion_asic, zynq_ba_accelerator
from repro.slam.pipeline import SlamRunResult, Stage, StageBreakdown

GIGA = 1e9


@dataclass(frozen=True)
class PlatformProfile:
    """One execution platform for the SLAM workload."""

    name: str
    stage_throughput_ops_s: Dict[Stage, float]
    power_overhead_w: float     # extra power the drone pays to host SLAM here
    weight_overhead_g: float    # extra weight the drone carries
    integration_cost: str       # Table 5 qualitative rows
    fabrication_cost: str

    def __post_init__(self) -> None:
        missing = [s for s in Stage if s not in self.stage_throughput_ops_s]
        if missing:
            raise ValueError(f"{self.name}: missing stage throughputs {missing}")
        if any(v <= 0 for v in self.stage_throughput_ops_s.values()):
            raise ValueError(f"{self.name}: throughputs must be positive")
        if self.power_overhead_w < 0 or self.weight_overhead_g < 0:
            raise ValueError("overheads cannot be negative")

    def stage_times_s(self, breakdown: StageBreakdown) -> Dict[Stage, float]:
        """Seconds spent per stage for the given operation counts."""
        return {
            stage: breakdown.operations[stage]
            / self.stage_throughput_ops_s[stage]
            for stage in Stage
        }

    def total_time_s(self, breakdown: StageBreakdown) -> float:
        return sum(self.stage_times_s(breakdown).values())

    def ba_time_fraction(self, breakdown: StageBreakdown) -> float:
        """Share of execution time in local+global BA (paper: ~90% on RPi)."""
        times = self.stage_times_s(breakdown)
        total = sum(times.values())
        if total == 0:
            raise ValueError("no work recorded")
        return (times[Stage.LOCAL_BA] + times[Stage.GLOBAL_BA]) / total


def rpi4_profile() -> PlatformProfile:
    """Raspberry Pi 4: the baseline executing ORB-SLAM in software."""
    return PlatformProfile(
        name="RPi",
        stage_throughput_ops_s={
            # NEON-friendly streaming kernels.
            Stage.FEATURE_EXTRACTION: 3.8 * GIGA,
            # Sparse, pointer-chasing, cache-hostile matrix assembly.
            Stage.LOCAL_BA: 0.25 * GIGA,
            Stage.GLOBAL_BA: 0.25 * GIGA,
            Stage.TRACKING: 0.30 * GIGA,
        },
        power_overhead_w=2.0,
        weight_overhead_g=50.0,
        integration_cost="Low",
        fabrication_cost="Low",
    )


def tx2_profile() -> PlatformProfile:
    """Nvidia Jetson TX2: GPU-accelerated BA, ~2x front end."""
    return PlatformProfile(
        name="TX2",
        stage_throughput_ops_s={
            Stage.FEATURE_EXTRACTION: 7.6 * GIGA,
            Stage.LOCAL_BA: 0.575 * GIGA,
            Stage.GLOBAL_BA: 0.575 * GIGA,
            Stage.TRACKING: 0.66 * GIGA,
        },
        power_overhead_w=10.0,
        weight_overhead_g=85.0,
        integration_cost="Low",
        fabrication_cost="Low",
    )


def fpga_profile() -> PlatformProfile:
    """ZYNQ XC7Z020: pipelined dense-block BA engine + eSLAM front end."""
    design = zynq_ba_accelerator()
    return PlatformProfile(
        name="FPGA",
        stage_throughput_ops_s={
            Stage.FEATURE_EXTRACTION: design.blocks[
                "feature_front_end"
            ].throughput_ops_s * 1.1,
            Stage.LOCAL_BA: design.blocks["ba_matrix_engine"].throughput_ops_s
            * 1.25,
            Stage.GLOBAL_BA: design.blocks["ba_matrix_engine"].throughput_ops_s
            * 1.25,
            Stage.TRACKING: design.blocks["tracking_solver"].throughput_ops_s
            * 4.0,
        },
        power_overhead_w=design.total_power_w,
        weight_overhead_g=75.0,
        integration_cost="Medium",
        fabrication_cost="Medium",
    )


def asic_profile() -> PlatformProfile:
    """Navion-class 65 nm ASIC (Suleiman et al., 24 mW)."""
    design = navion_asic()
    return PlatformProfile(
        name="ASIC",
        stage_throughput_ops_s={
            Stage.FEATURE_EXTRACTION: design.blocks[
                "feature_front_end"
            ].throughput_ops_s,
            Stage.LOCAL_BA: design.blocks["ba_matrix_engine"].throughput_ops_s
            * 1.25,
            Stage.GLOBAL_BA: design.blocks["ba_matrix_engine"].throughput_ops_s
            * 1.25,
            Stage.TRACKING: design.blocks["tracking_solver"].throughput_ops_s
            * 4.0,
        },
        power_overhead_w=design.total_power_w,
        weight_overhead_g=20.0,
        integration_cost="High",
        fabrication_cost="High",
    )


def all_profiles() -> List[PlatformProfile]:
    return [rpi4_profile(), tx2_profile(), fpga_profile(), asic_profile()]


# --- Figure 17 -----------------------------------------------------------------


@dataclass(frozen=True)
class SequenceSpeedup:
    """One Figure 17 bar: a platform's speedup over RPi on one sequence."""

    sequence: str
    platform: str
    total_speedup: float
    stage_speedup: Dict[Stage, float]
    stage_time_share: Dict[Stage, float]


@dataclass
class Figure17Study:
    """Per-sequence speedups plus geometric means (Figure 17)."""

    speedups: List[SequenceSpeedup] = field(default_factory=list)

    def geomean(self, platform: str) -> float:
        values = [s.total_speedup for s in self.speedups if s.platform == platform]
        if not values:
            raise KeyError(f"no speedups recorded for platform {platform!r}")
        return math.exp(sum(math.log(v) for v in values) / len(values))

    def for_sequence(self, sequence: str, platform: str) -> SequenceSpeedup:
        for entry in self.speedups:
            if entry.sequence == sequence and entry.platform == platform:
                return entry
        raise KeyError(f"no entry for {sequence}/{platform}")


def figure17_study(
    results: List[SlamRunResult],
    platforms: Optional[List[PlatformProfile]] = None,
) -> Figure17Study:
    """Compute Figure 17 from executed SLAM runs.

    ``results`` come from :class:`repro.slam.pipeline.SlamPipeline` runs on
    the EuRoC-like sequences; the baseline is always the RPi profile.
    """
    if not results:
        raise ValueError("need at least one SLAM run result")
    if platforms is None:
        platforms = [tx2_profile(), fpga_profile(), asic_profile()]
    baseline = rpi4_profile()
    study = Figure17Study()
    for result in results:
        base_times = baseline.stage_times_s(result.breakdown)
        base_total = sum(base_times.values())
        for platform in platforms:
            times = platform.stage_times_s(result.breakdown)
            total = sum(times.values())
            stage_speedup = {
                stage: (base_times[stage] / times[stage]) if times[stage] > 0 else 1.0
                for stage in Stage
            }
            stage_share = {
                stage: times[stage] / total for stage in Stage
            }
            study.speedups.append(
                SequenceSpeedup(
                    sequence=result.sequence_name,
                    platform=platform.name,
                    total_speedup=base_total / total,
                    stage_speedup=stage_speedup,
                    stage_time_share=stage_share,
                )
            )
    return study


# --- Table 5 ---------------------------------------------------------------------

#: The paper's Section 5.2 arithmetic constants.
SMALL_DRONE_TOTAL_POWER_W = 50.0
LARGE_DRONE_TOTAL_POWER_W = 140.0
BASELINE_FLIGHT_TIME_MIN = 15.0
SMALL_DRONE_WEIGHT_G = 500.0
LARGE_DRONE_WEIGHT_G = 2000.0


@dataclass(frozen=True)
class Table5Row:
    """One column of Table 5 (platform costs for SLAM)."""

    platform: str
    slam_speedup: float
    power_overhead_w: float
    weight_overhead_g: float
    integration_cost: str
    fabrication_cost: str
    gained_flight_time_small_min: float
    gained_flight_time_large_min: float


def _weight_power_delta_w(
    weight_delta_g: float, drone_weight_g: float, total_power_w: float
) -> float:
    """Propulsion-power change from a weight change (P ~ W^1.5 linearized)."""
    return 1.5 * total_power_w * weight_delta_g / drone_weight_g


def _gained_minutes(
    power_delta_w: float, total_power_w: float, flight_time_min: float
) -> float:
    """The paper's Delta_t ~ -(DeltaP / P) x t approximation."""
    return -power_delta_w / total_power_w * flight_time_min


def table5(
    study: Figure17Study,
    platforms: Optional[List[PlatformProfile]] = None,
) -> List[Table5Row]:
    """Reproduce Table 5 using the paper's own arithmetic.

    Semantics (matching the paper's Section 5.2 text):

    * TX2 is priced against the RPi baseline — adding it costs +8 W plus the
      extra weight's propulsion power, hence *negative* gained flight time.
    * FPGA and ASIC are priced against the 10 W CPU/GPU class they replace
      ("moving from CPU/GPU to FPGA... ~10/50 x 15 min"), power-only as in
      the paper's arithmetic.
    """
    if platforms is None:
        platforms = all_profiles()
    by_name = {p.name: p for p in platforms}
    if "RPi" not in by_name or "TX2" not in by_name:
        raise ValueError("Table 5 requires at least RPi and TX2 profiles")
    rpi = by_name["RPi"]
    tx2 = by_name["TX2"]
    rows = []
    for platform in platforms:
        if platform.name == "RPi":
            speedup = 1.0
            small = large = 0.0
        elif platform.name == "TX2":
            speedup = study.geomean("TX2")
            power_delta = platform.power_overhead_w - rpi.power_overhead_w
            weight_delta = platform.weight_overhead_g - rpi.weight_overhead_g
            small = _gained_minutes(
                power_delta
                + _weight_power_delta_w(
                    weight_delta, SMALL_DRONE_WEIGHT_G, SMALL_DRONE_TOTAL_POWER_W
                ),
                SMALL_DRONE_TOTAL_POWER_W,
                BASELINE_FLIGHT_TIME_MIN,
            )
            large = _gained_minutes(
                power_delta
                + _weight_power_delta_w(
                    weight_delta, LARGE_DRONE_WEIGHT_G, LARGE_DRONE_TOTAL_POWER_W
                ),
                LARGE_DRONE_TOTAL_POWER_W,
                BASELINE_FLIGHT_TIME_MIN,
            )
        else:
            speedup = study.geomean(platform.name)
            power_delta = platform.power_overhead_w - tx2.power_overhead_w
            small = _gained_minutes(
                power_delta, SMALL_DRONE_TOTAL_POWER_W, BASELINE_FLIGHT_TIME_MIN
            )
            large = _gained_minutes(
                power_delta, LARGE_DRONE_TOTAL_POWER_W, BASELINE_FLIGHT_TIME_MIN
            )
        rows.append(
            Table5Row(
                platform=platform.name,
                slam_speedup=speedup,
                power_overhead_w=platform.power_overhead_w,
                weight_overhead_g=platform.weight_overhead_g,
                integration_cost=platform.integration_cost,
                fabrication_cost=platform.fabrication_cost,
                gained_flight_time_small_min=small,
                gained_flight_time_large_min=large,
            )
        )
    return rows


def best_platform(rows: List[Table5Row]) -> Table5Row:
    """The paper's conclusion: pick the best cost-effectiveness tradeoff.

    ASIC matches FPGA's flight-time gain but at extreme integration and
    fabrication cost; TX2 loses flight time — FPGA wins.
    """
    if not rows:
        raise ValueError("no rows to choose from")
    cost_rank = {"Low": 0, "Medium": 1, "High": 2}

    def score(row: Table5Row) -> tuple:
        return (
            -row.gained_flight_time_small_min,
            cost_rank.get(row.integration_cost, 3)
            + cost_rank.get(row.fabrication_cost, 3),
        )

    # Among platforms within 0.5 min of the best gain, prefer lower cost.
    best_gain = max(r.gained_flight_time_small_min for r in rows)
    contenders = [
        r for r in rows if r.gained_flight_time_small_min >= best_gain - 0.5
    ]
    return min(contenders, key=lambda r: cost_rank.get(r.integration_cost, 3)
               + cost_rank.get(r.fabrication_cost, 3))
