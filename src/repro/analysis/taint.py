"""RNG/seed taint analysis: the reproducibility contract, statically.

The chaos engine promises that every trial is regenerable from
``(campaign_seed, trial_index)`` — which holds only if every generator
feeding :mod:`repro.chaos` and :mod:`repro.faults` is constructed from an
*explicit seed parameter*.  This pass tracks generator construction and
classifies the seed expression:

``seeded``
    Derives (through locals, attributes, tuples, and arithmetic) from a
    function parameter — ``default_rng((campaign_seed, trial_index))``,
    ``default_rng(self.seed + 1)``, ``default_rng([spec.link_seed, i])``.

``literal``
    A hard-coded constant.  Deterministic, but every trial shares it, so
    randomness no longer derives from the campaign identity.

``ambient``
    Derives from the environment — ``time.time()``, ``os.urandom`` — the
    exact nondeterminism the replay harness cannot reproduce.

``unseeded``
    No seed argument at all (``default_rng()``, ``random.Random()``).

Constructions that are not ``seeded`` are flagged, but only inside the
guarded packages (:attr:`RngTaintChecker.packages`): elsewhere a fixed
literal seed is a legitimate idiom (catalog generation, demo scripts).
Function summaries make the check interprocedural: a helper that returns
an unseeded generator taints every chaos call site that uses it, and a
wrapper like ``trial_rng(campaign_seed, trial_index)`` stays clean because
its taint is re-evaluated against the actual arguments at each call.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import Checker, SourceFile, Violation
from repro.analysis.flow import LocalFlow, bind_call_args, fixpoint_summaries
from repro.analysis.graph import CallSite, FunctionInfo, Program, attribute_chain

#: Taint lattice values, from best to worst.
SEEDED = "seeded"
UNKNOWN = "unknown"
LITERAL = "literal"
AMBIENT = "ambient"
UNSEEDED = "unseeded"

_SEVERITY = {SEEDED: 0, UNKNOWN: 1, LITERAL: 2, AMBIENT: 3, UNSEEDED: 4}

#: Constructor tails that produce a generator instance.
_RNG_CONSTRUCTORS = {"default_rng", "RandomState", "Generator", "Random"}

#: Ambient sources a seed must never derive from.
_AMBIENT_TAILS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("os", "urandom"),
    ("os", "getpid"),
    ("uuid", "uuid4"),
}

_PROBLEMS = {
    UNSEEDED: "is constructed without a seed",
    LITERAL: "is seeded by a hard-coded constant, not a seed parameter",
    AMBIENT: "derives its seed from ambient state (clock/os entropy)",
}


def _worst(*taints: str) -> str:
    return max(taints, key=lambda t: _SEVERITY[t]) if taints else UNKNOWN


def _combine(*taints: str) -> str:
    """Taint of a *composite* seed expression.

    Ambient or missing components poison the whole expression, but a
    parameter component redeems literal offsets: ``seed + 17`` and
    ``(campaign_seed, 3)`` still derive from the campaign identity.
    """
    if not taints:
        return UNKNOWN
    worst = _worst(*taints)
    if worst in (AMBIENT, UNSEEDED):
        return worst
    if SEEDED in taints:
        return SEEDED
    return worst


class RngTaintChecker(Checker):
    """Flag generators in the guarded packages not derived from seeds."""

    rules = ("rng-taint",)

    #: Module prefixes where the seed-derivation contract is enforced.
    #: ``repro.exec`` is guarded for its self-chaos fault simulator: an
    #: unseeded flaky-fault stream would make the execution layer's own
    #: resilience tests unreproducible.
    packages: Tuple[str, ...] = ("repro.chaos", "repro.faults", "repro.exec")

    def check(
        self, files: Sequence[SourceFile], program: Optional[Program] = None
    ) -> List[Violation]:
        if program is None:
            program = Program.build(files)
        functions = list(program.functions())
        summaries = fixpoint_summaries(
            functions,
            lambda fn, prior: self._summarize(program, fn, prior),
            max_rounds=8,
        )
        out: List[Violation] = []
        for fn in functions:
            if self._guarded(fn.module):
                self._check_function(out, program, fn, summaries)
        return out

    def _guarded(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.packages
        )

    # -- summaries -----------------------------------------------------------

    def _summarize(
        self,
        program: Program,
        fn: FunctionInfo,
        summaries: Dict[str, Optional[str]],
    ) -> Optional[str]:
        """Taint of the generator ``fn`` returns, or None if it returns
        no recognizable generator.  ``seeded`` here means *seeded from
        fn's own parameters* — call sites re-judge their actual args."""
        result = self._flow(program, fn, summaries)
        taints = [fact for _, fact in result.returns if fact is not None]
        if not taints:
            return None
        return _worst(*taints)

    def _flow(
        self,
        program: Program,
        fn: FunctionInfo,
        summaries: Dict[str, Optional[str]],
    ):
        sites = {id(site.call): site for site in program.call_sites(fn)}
        params = set(fn.params)

        def eval_expr(expr: ast.expr, env: Dict[str, str]) -> Optional[str]:
            return self._rng_taint(expr, env, params, sites, summaries)

        return LocalFlow(eval_expr).run(fn.node, {})

    # -- taint evaluation ----------------------------------------------------

    def _rng_taint(
        self,
        expr: ast.expr,
        env: Dict[str, str],
        params: Set[str],
        sites: Dict[int, CallSite],
        summaries: Dict[str, Optional[str]],
    ) -> Optional[str]:
        """Taint of an expression *as a generator object*, else None."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Call):
            chain = attribute_chain(expr.func)
            if chain and chain[-1] in _RNG_CONSTRUCTORS:
                if not expr.args and not expr.keywords:
                    return UNSEEDED
                seed_args = [a for a in expr.args if not isinstance(a, ast.Starred)]
                seed_args.extend(k.value for k in expr.keywords)
                return _combine(
                    *(self._seed_taint(a, env, params) for a in seed_args)
                )
            site = sites.get(id(expr))
            if site is not None:
                summary = summaries.get(site.callee.qualname)
                if summary is None:
                    return None
                if summary != SEEDED:
                    return summary
                # Seeded from the callee's params: judge the actual args.
                bound = bind_call_args(
                    site.callee, expr, drop_receiver=site.kind != "function"
                )
                if not bound:
                    return UNKNOWN
                return _combine(
                    *(self._seed_taint(a, env, params) for a in bound.values())
                )
        return None

    def _seed_taint(
        self, expr: ast.expr, env: Dict[str, str], params: Set[str]
    ) -> str:
        """Taint of an expression *as a seed value*."""
        if isinstance(expr, ast.Constant):
            return LITERAL
        if isinstance(expr, ast.Name):
            if expr.id in params:
                return SEEDED
            return UNKNOWN
        if isinstance(expr, (ast.Attribute, ast.Subscript)):
            root = expr
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name) and root.id in params:
                return SEEDED
            return UNKNOWN
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return _combine(*(self._seed_taint(e, env, params) for e in expr.elts))
        if isinstance(expr, ast.BinOp):
            return _combine(
                self._seed_taint(expr.left, env, params),
                self._seed_taint(expr.right, env, params),
            )
        if isinstance(expr, ast.UnaryOp):
            return self._seed_taint(expr.operand, env, params)
        if isinstance(expr, ast.Call):
            chain = attribute_chain(expr.func)
            if len(chain) >= 2 and (chain[-2], chain[-1]) in _AMBIENT_TAILS:
                return AMBIENT
            parts = [
                self._seed_taint(a, env, params)
                for a in expr.args
                if not isinstance(a, ast.Starred)
            ]
            parts.extend(
                self._seed_taint(k.value, env, params) for k in expr.keywords
            )
            return _combine(*parts) if parts else UNKNOWN
        return UNKNOWN

    # -- violations ----------------------------------------------------------

    def _check_function(
        self,
        out: List[Violation],
        program: Program,
        fn: FunctionInfo,
        summaries: Dict[str, Optional[str]],
    ) -> None:
        sites = {id(site.call): site for site in program.call_sites(fn)}
        params = set(fn.params)
        flagged: Set[int] = set()

        def eval_expr(expr: ast.expr, env: Dict[str, str]) -> Optional[str]:
            taint = self._rng_taint(expr, env, params, sites, summaries)
            if (
                taint in _PROBLEMS
                and isinstance(expr, ast.Call)
                and id(expr) not in flagged
            ):
                flagged.add(id(expr))
                origin = self._describe_origin(expr, sites)
                self.emit(
                    out,
                    fn.src,
                    "rng-taint",
                    expr,
                    f"in {fn.qualname}: generator from {origin} "
                    f"{_PROBLEMS[taint]}",
                )
            return taint

        LocalFlow(eval_expr).run(fn.node, {})
        # Generator expressions outside assignments/returns (e.g. a bare
        # ``rng.normal()`` on a freshly-built generator) still get caught
        # by walking every call once more.
        env_final: Dict[str, str] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                eval_expr(node, env_final)

    @staticmethod
    def _describe_origin(expr: ast.Call, sites: Dict[int, CallSite]) -> str:
        site = sites.get(id(expr))
        if site is not None:
            return site.callee.qualname
        chain = attribute_chain(expr.func)
        return ".".join(chain) if chain else "<call>"
