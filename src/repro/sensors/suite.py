"""The full on-board sensor suite, scheduled at Table 2a data rates.

:class:`SensorSuite` owns one of each on-board sensor and exposes a single
``poll`` that fires each sensor when its period elapses — mirroring how the
flight controller's acquisition code services sensors at different rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.analysis.markers import hot_path
from repro.sensors.barometer import Barometer
from repro.sensors.gps import Gps, GpsUnavailableError
from repro.sensors.imu import Imu
from repro.sensors.magnetometer import Magnetometer
from repro.physics.rigid_body import QuadcopterState

#: Table 2a — common data frequencies of on-board sensors.
TABLE2A_SENSOR_RATES_HZ = {
    "accelerometer": (100.0, 200.0),
    "gyroscope": (100.0, 200.0),
    "magnetometer": (10.0, 10.0),
    "barometer": (10.0, 20.0),
    "gps": (1.0, 40.0),
}


@dataclass
class SensorReadings:
    """Whatever fired during one poll; None means that sensor was not due."""

    accel_body_m_s2: Optional[np.ndarray] = None
    gyro_rad_s: Optional[np.ndarray] = None
    baro_altitude_m: Optional[float] = None
    gps_position_m: Optional[np.ndarray] = None
    mag_yaw_rad: Optional[float] = None

    @property
    def imu_fired(self) -> bool:
        return self.accel_body_m_s2 is not None


@dataclass
class SensorSuite:
    """All on-board sensors with per-sensor scheduling."""

    imu: Imu = field(default_factory=Imu)
    barometer: Barometer = field(default_factory=Barometer)
    gps: Gps = field(default_factory=Gps)
    magnetometer: Magnetometer = field(default_factory=Magnetometer)
    _time_s: float = field(default=0.0)
    _due: Dict[str, float] = field(default_factory=dict)
    _last_gps_fix_s: float = field(default=0.0)

    def __post_init__(self) -> None:
        self._due = {"imu": 0.0, "baro": 0.0, "gps": 0.0, "mag": 0.0}

    def gps_fix_age_s(self) -> float:
        """Seconds since the last successful GPS fix (0 before any polling).

        This is the signal the autopilot's GPS-loss failsafe watches: a
        denied/indoor receiver keeps getting polled but produces no fix, so
        the age keeps growing.
        """
        return self._time_s - self._last_gps_fix_s

    @hot_path
    def poll(self, state: QuadcopterState, dt: float) -> SensorReadings:
        """Advance time by ``dt`` and fire every sensor whose period elapsed."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self._time_s += dt
        readings = SensorReadings()
        # Deadlines advance by whole periods from the previous deadline (not
        # from "now"), so floating-point grid beating cannot stretch the
        # effective period.
        if self._time_s + 1e-12 >= self._due["imu"]:
            self._due["imu"] = max(
                self._due["imu"] + self.imu.period_s, self._time_s
            )
            accel, gyro = self.imu.sample(state, self.imu.period_s)
            readings.accel_body_m_s2 = accel
            readings.gyro_rad_s = gyro
        if self._time_s + 1e-12 >= self._due["baro"]:
            self._due["baro"] = max(
                self._due["baro"] + self.barometer.period_s, self._time_s
            )
            readings.baro_altitude_m = self.barometer.sample(state)
        if self._time_s + 1e-12 >= self._due["gps"]:
            self._due["gps"] = max(
                self._due["gps"] + self.gps.period_s, self._time_s
            )
            try:
                readings.gps_position_m = self.gps.sample(state)
                self._last_gps_fix_s = self._time_s
            except GpsUnavailableError:
                readings.gps_position_m = None
        if self._time_s + 1e-12 >= self._due["mag"]:
            self._due["mag"] = max(
                self._due["mag"] + self.magnetometer.period_s, self._time_s
            )
            readings.mag_yaw_rad = self.magnetometer.sample(state)
        return readings

    def sample_counts(self) -> Dict[str, int]:
        """Per-sensor sample counts — used to verify Table 2a rates."""
        return {
            "imu": self.imu.samples,
            "barometer": self.barometer.samples,
            "gps": self.gps.samples,
            "magnetometer": self.magnetometer.samples,
        }

    def reset(self) -> None:
        self.imu.reset()
        self.barometer.reset()
        self.gps.reset()
        self.magnetometer.reset()
        self._time_s = 0.0
        self._due = {"imu": 0.0, "baro": 0.0, "gps": 0.0, "mag": 0.0}
        self._last_gps_fix_s = 0.0
