"""Analytic accelerator models: the FPGA bundle-adjustment engine and the
Navion-class ASIC (paper Section 5.2).

The paper's FPGA implementation "extensively accelerates the local and
global bundle adjustments ... by using simple modules of dense fixed-size
matrix algebra in a pipeline" plus an eSLAM-style feature-extraction front
end, clocked at 100 MHz on a ZYNQ XC7Z020.  We model the microarchitecture
analytically: pipelined MAC arrays whose throughput is lanes x clock, plus
a utilization report in the spirit of Vivado's post-implementation numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

FPGA_CLOCK_HZ = 100e6  # the paper sets the HLS clock to 100 MHz


@dataclass(frozen=True)
class AcceleratorBlock:
    """One pipelined functional block of the accelerator."""

    name: str
    lanes: int                 # parallel MAC/compare lanes
    clock_hz: float
    efficiency: float          # pipeline fill/stall efficiency in (0, 1]
    dsp_slices: int
    bram_kb: int

    def __post_init__(self) -> None:
        if self.lanes <= 0 or self.clock_hz <= 0:
            raise ValueError("lanes and clock must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1]: {self.efficiency}")
        if self.dsp_slices < 0 or self.bram_kb < 0:
            raise ValueError("resource counts cannot be negative")

    @property
    def throughput_ops_s(self) -> float:
        """Sustained operations per second."""
        return self.lanes * self.clock_hz * self.efficiency

    def time_for(self, operations: int) -> float:
        """Seconds to stream ``operations`` through this block."""
        if operations < 0:
            raise ValueError("operation count cannot be negative")
        return operations / self.throughput_ops_s


@dataclass(frozen=True)
class AcceleratorDesign:
    """A full accelerator: named blocks plus a power envelope."""

    name: str
    blocks: Dict[str, AcceleratorBlock]
    static_power_w: float
    dynamic_power_w: float

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError("accelerator needs at least one block")
        if self.static_power_w < 0 or self.dynamic_power_w < 0:
            raise ValueError("power cannot be negative")

    @property
    def total_power_w(self) -> float:
        return self.static_power_w + self.dynamic_power_w

    def utilization_report(self) -> Dict[str, Dict[str, float]]:
        """Per-block resources — the post-implementation summary analogue."""
        return {
            name: {
                "dsp_slices": block.dsp_slices,
                "bram_kb": block.bram_kb,
                "throughput_gops": block.throughput_ops_s / 1e9,
            }
            for name, block in self.blocks.items()
        }

    def dsp_total(self) -> int:
        return sum(block.dsp_slices for block in self.blocks.values())


def zynq_ba_accelerator() -> AcceleratorDesign:
    """The paper's ZYNQ XC7Z020 design: BA matrix pipeline + eSLAM front end.

    The XC7Z020 has 220 DSP slices and 630 KB of BRAM; the design fits
    comfortably (the paper reports post-implementation utilization from
    Vivado).  Power: 417 mW total.
    """
    blocks = {
        # Dense fixed-size matrix algebra for BA: 64 MAC lanes, deep pipeline.
        "ba_matrix_engine": AcceleratorBlock(
            name="ba_matrix_engine", lanes=96, clock_hz=FPGA_CLOCK_HZ,
            efficiency=0.85, dsp_slices=128, bram_kb=288,
        ),
        # eSLAM-style feature extraction: FAST + rBRIEF systolic pipeline.
        # "lanes" is fused operations per cycle: the pixel pipeline performs
        # the 16-pixel FAST test, orientation, and BRIEF comparisons of one
        # pixel position every cycle.
        "feature_front_end": AcceleratorBlock(
            name="feature_front_end", lanes=460, clock_hz=FPGA_CLOCK_HZ,
            efficiency=0.90, dsp_slices=36, bram_kb=144,
        ),
        # Pose-refinement (tracking) solver shares the matrix engine style.
        "tracking_solver": AcceleratorBlock(
            name="tracking_solver", lanes=32, clock_hz=FPGA_CLOCK_HZ,
            efficiency=0.80, dsp_slices=24, bram_kb=36,
        ),
    }
    return AcceleratorDesign(
        name="ZYNQ-XC7Z020-BA",
        blocks=blocks,
        static_power_w=0.12,
        dynamic_power_w=0.297,
    )


def navion_asic() -> AcceleratorDesign:
    """A Navion-class 65 nm ASIC (Suleiman et al.): 24 mW max, 20 FPS VIO.

    Lower clock and narrower datapaths than the FPGA, but an order of
    magnitude better energy efficiency; throughput lands slightly below the
    FPGA design, matching Table 5 (23.53x vs 30.70x over the RPi).
    """
    blocks = {
        "ba_matrix_engine": AcceleratorBlock(
            name="ba_matrix_engine", lanes=104, clock_hz=62.5e6,
            efficiency=0.92, dsp_slices=0, bram_kb=864,
        ),
        "feature_front_end": AcceleratorBlock(
            name="feature_front_end", lanes=660, clock_hz=62.5e6,
            efficiency=0.92, dsp_slices=0, bram_kb=256,
        ),
        "tracking_solver": AcceleratorBlock(
            name="tracking_solver", lanes=24, clock_hz=62.5e6,
            efficiency=0.85, dsp_slices=0, bram_kb=96,
        ),
    }
    return AcceleratorDesign(
        name="Navion-65nm",
        blocks=blocks,
        static_power_w=0.004,
        dynamic_power_w=0.020,
    )
