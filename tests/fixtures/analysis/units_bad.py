"""Units fixture: incompatible-unit arithmetic (lines matter to the tests)."""


def takeoff_margin(mass_kg: float, thrust_n: float, burn_time_s: float) -> float:
    bad_sum = mass_kg + thrust_n
    if thrust_n > burn_time_s:
        bad_sum += 1.0
    elapsed_ms = 250.0
    elapsed_ms += burn_time_s
    allowed = mass_kg + thrust_n  # lint: ignore[units-mismatch]
    return bad_sum + allowed


def log_weight(weight_g: float) -> None:
    record_mass(mass_kg=weight_g)


def record_mass(mass_kg: float) -> None:
    del mass_kg


def clean_math(mass_kg: float, payload_kg: float, thrust_n: float) -> float:
    total_kg = mass_kg + payload_kg
    return total_kg * thrust_n
