"""Tests: DShot protocol, BLDC commutation, and the ESC thermal model that
derives the paper's short-/long-flight classification."""

import math

import pytest

from repro.components.esc import EscClass, esc_unit_weight_g
from repro.core.metrics import max_horizontal_speed_m_s
from repro.physics.esc_model import (
    CommutationModel,
    DshotError,
    command_frequency_hz,
    decode_dshot,
    dshot_checksum,
    encode_dshot,
    throttle_fraction,
    throttle_value,
)
from repro.physics.thermal import (
    ThermalModel,
    esc_dissipation_w,
    esc_thermal_model,
)


class TestDshot:
    def test_roundtrip(self):
        frame = encode_dshot(1047, telemetry_request=True)
        throttle, telemetry = decode_dshot(frame)
        assert throttle == 1047
        assert telemetry is True

    @pytest.mark.parametrize("throttle", [0, 48, 1024, 2047])
    def test_roundtrip_range(self, throttle):
        assert decode_dshot(encode_dshot(throttle))[0] == throttle

    def test_corruption_detected(self):
        frame = encode_dshot(1000)
        with pytest.raises(DshotError, match="checksum"):
            decode_dshot(frame ^ 0x0100)  # flip a payload bit

    def test_out_of_range_throttle(self):
        with pytest.raises(DshotError):
            encode_dshot(5000)

    def test_checksum_is_4_bits(self):
        for payload in (0x000, 0xFFF, 0xABC):
            assert 0 <= dshot_checksum(payload) <= 0xF

    def test_throttle_fraction_mapping(self):
        assert throttle_fraction(0) == 0.0
        assert throttle_fraction(47) == 0.0  # reserved commands
        assert throttle_fraction(2047) == 1.0
        assert throttle_value(1.0) == 2047
        assert throttle_value(0.0) == 0
        # Roundtrip within quantization.
        assert throttle_fraction(throttle_value(0.5)) == pytest.approx(0.5, abs=1e-3)

    def test_dshot1200_command_frequency_matches_paper(self):
        """Paper: 'the DShot1200 protocol has a communication frequency of
        74.6 KHz'."""
        assert command_frequency_hz(1200) == pytest.approx(74_600.0, rel=0.01)

    def test_unknown_variant(self):
        with pytest.raises(DshotError):
            command_frequency_hz(2400)


class TestCommutation:
    def test_electrical_frequency(self):
        model = CommutationModel(pole_pairs=7)
        assert model.electrical_frequency_hz(6000.0) == pytest.approx(700.0)

    def test_switching_band_matches_paper(self):
        """Paper: ESCs need 60-600 kHz switching at flight RPMs."""
        model = CommutationModel(pole_pairs=7)
        low = model.pwm_switching_frequency_hz(3000.0, pwm_base_hz=10_000.0)
        high = model.pwm_switching_frequency_hz(40_000.0, pwm_base_hz=96_000.0)
        assert 55_000.0 < low < 120_000.0
        assert 450_000.0 < high < 700_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CommutationModel(pole_pairs=0)
        with pytest.raises(ValueError):
            CommutationModel().electrical_frequency_hz(-1.0)


class TestThermalModel:
    def test_steady_state(self):
        model = ThermalModel(
            thermal_resistance_c_per_w=10.0, thermal_capacity_j_per_c=50.0
        )
        assert model.steady_state_c(5.0) == pytest.approx(75.0)

    def test_step_converges_to_steady_state(self):
        model = ThermalModel(
            thermal_resistance_c_per_w=10.0, thermal_capacity_j_per_c=50.0
        )
        for _ in range(100):
            model.step(5.0, 60.0)
        assert model.temperature_c == pytest.approx(75.0, abs=0.5)

    def test_time_to_limit_closed_form(self):
        model = ThermalModel(
            thermal_resistance_c_per_w=10.0, thermal_capacity_j_per_c=50.0
        )
        predicted = model.time_to_limit_s(12.0)  # steady 145 > 110
        # Verify by integration.
        probe = ThermalModel(
            thermal_resistance_c_per_w=10.0, thermal_capacity_j_per_c=50.0
        )
        elapsed = 0.0
        while not probe.overheated:
            probe.step(12.0, 1.0)
            elapsed += 1.0
            assert elapsed < 10_000
        assert elapsed == pytest.approx(predicted, rel=0.05)

    def test_never_overheats_below_limit(self):
        model = ThermalModel(
            thermal_resistance_c_per_w=5.0, thermal_capacity_j_per_c=50.0
        )
        assert model.time_to_limit_s(10.0) == math.inf


class TestEscClassDerivation:
    """The headline: the thermal model *derives* Figure 8a's class split."""

    RATED_CURRENT_A = 30.0

    def test_racing_esc_overheats_past_5_minutes(self):
        weight = esc_unit_weight_g(self.RATED_CURRENT_A, EscClass.SHORT_FLIGHT)
        model = esc_thermal_model(EscClass.SHORT_FLIGHT, weight)
        dissipation = esc_dissipation_w(self.RATED_CURRENT_A)
        time_to_limit = model.time_to_limit_s(dissipation)
        # The paper's racing classification: "Short-flight (under 5 minutes)".
        assert 120.0 < time_to_limit < 720.0

    def test_long_flight_esc_never_overheats_at_rated_load(self):
        weight = esc_unit_weight_g(self.RATED_CURRENT_A, EscClass.LONG_FLIGHT)
        model = esc_thermal_model(EscClass.LONG_FLIGHT, weight)
        dissipation = esc_dissipation_w(self.RATED_CURRENT_A)
        assert model.time_to_limit_s(dissipation) == math.inf

    def test_both_classes_fine_at_hover_load(self):
        hover_current = 8.0
        for esc_class in EscClass:
            weight = esc_unit_weight_g(self.RATED_CURRENT_A, esc_class)
            model = esc_thermal_model(esc_class, weight)
            assert model.time_to_limit_s(
                esc_dissipation_w(hover_current)
            ) == math.inf

    def test_heavier_esc_cooler(self):
        light = esc_thermal_model(EscClass.LONG_FLIGHT, 15.0)
        heavy = esc_thermal_model(EscClass.LONG_FLIGHT, 60.0)
        assert heavy.steady_state_c(5.0) < light.steady_state_c(5.0)


class TestMaxSpeed:
    def test_twr1_cannot_move(self):
        assert max_horizontal_speed_m_s(1000.0, 1.0) == 0.0

    def test_higher_twr_faster(self):
        slow = max_horizontal_speed_m_s(1000.0, 2.0)
        fast = max_horizontal_speed_m_s(1000.0, 5.0)
        assert fast > slow > 0.0

    def test_realistic_magnitudes(self):
        """A 1 kg TWR-2 quad tops out around 20-40 m/s (real drones do)."""
        speed = max_horizontal_speed_m_s(1000.0, 2.0)
        assert 15.0 < speed < 50.0

    def test_draggier_airframe_slower(self):
        clean = max_horizontal_speed_m_s(1000.0, 3.0, drag_coefficient_area_m2=0.01)
        draggy = max_horizontal_speed_m_s(1000.0, 3.0, drag_coefficient_area_m2=0.05)
        assert draggy < clean

    def test_validation(self):
        with pytest.raises(ValueError):
            max_horizontal_speed_m_s(-1.0, 2.0)
        with pytest.raises(ValueError):
            max_horizontal_speed_m_s(1000.0, 2.0, drag_coefficient_area_m2=0.0)
