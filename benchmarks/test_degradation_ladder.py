"""Robustness benchmark: the autonomy degradation ladder, end to end.

Drives the perception fault matrix (feature droughts, frame corruption,
compute throttling) through the supervised SLAM pipeline and the
unsupervised baseline, replays a burst-lossy offload stream through the
fallback chain, and prices every fallback tier in the paper's design-space
currency (watts, flight minutes, deadline misses).  The acceptance bar:
the supervised pipeline recovers a valid pose in >=90% of loss episodes
and never emits NaN/Inf, while the baseline demonstrably dead-reckons into
unbounded error/staleness.  Every number is bit-for-bit deterministic.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.autopilot.mavlink import GilbertElliott, Link
from repro.autopilot.offload import OffboardComputeNode
from repro.faults import perception_scenarios
from repro.platforms.profiles import rpi4_profile, tx2_profile
from repro.resilience import (
    OffloadSupervisor,
    fallback_tier_costs,
    rpi4_compute_thermal,
    run_perception_scenario,
    simulate_fallback_chain,
    thermal_deadline_study,
    tx2_compute_thermal,
)

from conftest import print_table

RESULTS_JSON = pathlib.Path(__file__).resolve().parent.parent / "results" / (
    "degradation_ladder.json"
)


@pytest.fixture(scope="module")
def study_pairs():
    """(supervised, baseline) outcomes over the perception fault matrix."""
    return [
        (
            run_perception_scenario(scenario, supervised=True),
            run_perception_scenario(scenario, supervised=False),
        )
        for scenario in perception_scenarios()
    ]


def test_supervised_pipeline_recovers(study_pairs):
    rows = [
        (
            supervised.scenario,
            supervised.loss_episodes,
            f"{supervised.recovery_rate:.0%}",
            f"{supervised.mean_frames_to_recover:.1f}",
            supervised.reinitializations,
            f"{supervised.ate_rmse_m:.2f} m",
            f"{baseline.ate_rmse_m:.2f} m",
            baseline.tracking_failures,
        )
        for supervised, baseline in study_pairs
    ]
    print_table(
        "Perception fault matrix: supervised recovery vs baseline drift",
        (
            "scenario", "episodes", "recovered", "frames to recover",
            "reinits", "ATE (supervised)", "ATE (baseline)", "baseline failures",
        ),
        rows,
    )

    episodes = sum(s.loss_episodes for s, _ in study_pairs)
    recovered = sum(s.recovered_episodes for s, _ in study_pairs)
    # The fault matrix must actually cause tracking loss...
    assert episodes >= 5
    # ...and the ladder must recover >=90% of the episodes it opens.
    assert recovered / episodes >= 0.9
    for supervised, _ in study_pairs:
        # Valid pose throughout: no NaN/Inf ever reaches the trajectory.
        assert supervised.all_finite
        assert supervised.recovery_rate >= 0.9
        assert np.isfinite(supervised.ate_rmse_m)


def test_baseline_demonstrably_degrades(study_pairs):
    faulted = [
        (supervised, baseline)
        for supervised, baseline in study_pairs
        if supervised.loss_episodes > 0
    ]
    assert faulted
    for supervised, baseline in faulted:
        # The unsupervised pipeline dead-reckons through the fault: failures
        # pile up for the whole window instead of being recovered in a few
        # frames.
        assert baseline.tracking_failures >= 50
        assert baseline.tracking_failures > supervised.tracking_failures
    # Across the faulted matrix the ladder at least halves the final drift.
    supervised_drift = sum(s.final_pose_error_m for s, _ in faulted)
    baseline_drift = sum(b.final_pose_error_m for _, b in faulted)
    assert supervised_drift < 0.6 * baseline_drift


def test_degradation_study_is_deterministic():
    scenario = perception_scenarios()[0]
    first = run_perception_scenario(scenario, supervised=True)
    second = run_perception_scenario(scenario, supervised=True)
    assert first.fingerprint() == second.fingerprint()


def test_fallback_chain_bounds_staleness(slam_results):
    result = slam_results[0]  # MH01
    duration_s = result.frames_processed / 20.0

    def stream():
        link = Link(
            seed=13,
            burst_model=GilbertElliott(
                p_good_to_bad=0.08, p_bad_to_good=0.15,
                loss_good=0.0, loss_bad=1.0,
            ),
        )
        node = OffboardComputeNode(
            platform=tx2_profile(), link=link,
            crash_at_s=1.5, recover_at_s=3.0,
        )
        return node.process_stream(result)

    baseline = simulate_fallback_chain(stream(), duration_s, supervisor=None)
    supervised = simulate_fallback_chain(
        stream(), duration_s, supervisor=OffloadSupervisor()
    )
    # Pinned to the off-board stream, staleness grows with the outage.
    assert not baseline.bounded
    assert baseline.worst_consumer_staleness_s > 1.4
    # The chain steps down within the staleness limit and holds the bound.
    assert supervised.bounded
    assert supervised.worst_consumer_staleness_s <= 0.6
    assert supervised.step_downs >= 1


def test_fallback_tier_costs_table(slam_results):
    result = slam_results[0]
    costs = fallback_tier_costs(result)
    rows = [
        (
            cost.tier,
            f"{cost.compute_power_w:.1f} W",
            f"{cost.flight_time_delta_min:+.2f} min",
            f"{cost.deadline_miss_rate:.1%}",
        )
        for cost in costs
    ]
    print_table(
        "Fallback tier costs (small drone, 50 W hover, 15 min baseline)",
        ("tier", "compute power", "flight time", "deadline misses"),
        rows,
    )
    by_tier = {cost.tier: cost for cost in costs}
    # Onboard SLAM is the expensive tier: it pays the platform's full power
    # overhead, so it costs the most flight time.
    assert (
        by_tier["ONBOARD_REDUCED"].compute_power_w
        > by_tier["OFFBOARD"].compute_power_w
        > by_tier["DEAD_RECKONING"].compute_power_w
    )
    for cost in costs:
        assert cost.flight_time_delta_min < 0.0
        assert cost.flight_time_delta_min == pytest.approx(
            -cost.compute_power_w / 50.0 * 15.0
        )
    assert 0.0 <= by_tier["ONBOARD_REDUCED"].deadline_miss_rate <= 1.0


def test_thermal_throttling_costs_deadlines(slam_results):
    result = slam_results[0]
    platform = rpi4_profile()
    rpi4 = thermal_deadline_study(
        result, platform, rpi4_compute_thermal(), duration_s=600.0
    )
    tx2 = thermal_deadline_study(
        result, platform, tx2_compute_thermal(), duration_s=600.0
    )
    rows = [
        (
            name,
            f"{study.peak_temperature_c:.0f} C",
            f"{study.final_scale:.2f}",
            study.throttle_events,
            study.final_stride,
            f"{study.report_nominal.miss_rate:.1%}",
            f"{study.report_throttled.miss_rate:.1%}",
        )
        for name, study in (("rpi4 (bare SoC)", rpi4), ("tx2 (heatsink)", tx2))
    ]
    print_table(
        "Thermal throttling: 10 min sustained SLAM load",
        (
            "thermal profile", "peak temp", "final clock", "throttles",
            "frame stride", "nominal misses", "throttled misses",
        ),
        rows,
    )
    # The bare RPi4 SoC must hit its DVFS trigger within ten minutes...
    assert rpi4.throttled
    assert rpi4.throttle_events >= 1
    assert rpi4.peak_temperature_c >= 79.0
    # ...while the heatsinked TX2 rides out the same load at full clock.
    assert not tx2.throttled
    assert tx2.throttle_events == 0
    # Throttling never melts down into a shutdown, and the skip policy keeps
    # the processed stream's miss rate bounded.
    assert rpi4.peak_temperature_c < 90.0
    assert rpi4.report_throttled.miss_rate <= 0.5


def test_write_degradation_artifact(study_pairs, slam_results):
    """Persist the study as JSON — the CI robustness job uploads this."""
    result = slam_results[0]
    payload = {
        "perception_matrix": [
            {
                "scenario": supervised.scenario,
                "supervised": {
                    "loss_episodes": supervised.loss_episodes,
                    "recovered_episodes": supervised.recovered_episodes,
                    "recovery_rate": supervised.recovery_rate,
                    "mean_frames_to_recover": supervised.mean_frames_to_recover,
                    "reinitializations": supervised.reinitializations,
                    "numerical_faults": supervised.numerical_faults,
                    "ate_rmse_m": supervised.ate_rmse_m,
                    "final_pose_error_m": supervised.final_pose_error_m,
                    "all_finite": supervised.all_finite,
                },
                "baseline": {
                    "tracking_failures": baseline.tracking_failures,
                    "ate_rmse_m": baseline.ate_rmse_m,
                    "final_pose_error_m": baseline.final_pose_error_m,
                    "all_finite": baseline.all_finite,
                },
            }
            for supervised, baseline in study_pairs
        ],
        "fallback_tier_costs": [
            {
                "tier": cost.tier,
                "compute_power_w": cost.compute_power_w,
                "flight_time_delta_min": cost.flight_time_delta_min,
                "deadline_miss_rate": cost.deadline_miss_rate,
            }
            for cost in fallback_tier_costs(result)
        ],
    }
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    assert json.loads(RESULTS_JSON.read_text())["perception_matrix"]
