"""Tests: geofence failsafe, design serialization, voltage-sag coupling,
and SLAM seed robustness."""

import json

import numpy as np
import pytest

from repro.autopilot.arducopter import Autopilot, FlightMode, Geofence
from repro.core.design import DroneDesign
from repro.sim.simulator import DroneModel, FlightSimulator


def make_autopilot(geofence=None) -> Autopilot:
    model = DroneModel(
        mass_kg=1.071, wheelbase_mm=450.0, battery_cells=3,
        battery_capacity_mah=3000.0,
    )
    return Autopilot(
        FlightSimulator(model, physics_rate_hz=400.0), geofence=geofence
    )


class TestGeofence:
    def test_breach_detection(self):
        fence = Geofence(radius_m=10.0, ceiling_m=8.0)
        home = np.zeros(3)
        assert not fence.breached(np.array([5.0, 0.0, 3.0]), home)
        assert fence.breached(np.array([11.0, 0.0, 3.0]), home)
        assert fence.breached(np.array([0.0, 0.0, 9.0]), home)

    def test_disabled_fence_never_breaches(self):
        fence = Geofence(radius_m=1.0, ceiling_m=1.0, enabled=False)
        assert not fence.breached(np.array([100.0, 0.0, 100.0]), np.zeros(3))

    def test_lateral_breach_triggers_rtl(self):
        autopilot = make_autopilot(Geofence(radius_m=4.0, ceiling_m=20.0))
        autopilot.arm()
        autopilot.takeoff(5.0)
        for _ in range(50):
            autopilot.update(0.1)
        autopilot.goto(np.array([10.0, 0.0, 5.0]))  # beyond the fence
        for _ in range(60):
            autopilot.update(0.1)
            if autopilot.fence_breached:
                break
        assert autopilot.fence_breached
        assert autopilot.mode is FlightMode.RTL
        # RTL brings the drone back inside the fence.
        for _ in range(80):
            autopilot.update(0.1)
        position = autopilot.sim.body.state.position_m
        assert np.linalg.norm(position[0:2]) < 4.0

    def test_ceiling_breach_triggers_rtl(self):
        autopilot = make_autopilot(Geofence(radius_m=50.0, ceiling_m=3.0))
        autopilot.arm()
        autopilot.takeoff(8.0)
        for _ in range(60):
            autopilot.update(0.1)
            if autopilot.fence_breached:
                break
        assert autopilot.fence_breached

    def test_fence_validation(self):
        with pytest.raises(ValueError):
            Geofence(radius_m=0.0)


class TestDesignSerialization:
    def test_roundtrip_preserves_evaluation(self):
        original = DroneDesign(
            wheelbase_mm=450.0, battery_cells=3, battery_capacity_mah=4000.0,
            compute_power_w=5.0, payload_g=120.0,
        )
        clone = DroneDesign.from_dict(original.to_dict())
        assert clone.evaluate().as_dict() == original.evaluate().as_dict()

    def test_dict_is_json_serializable(self):
        design = DroneDesign(
            wheelbase_mm=450.0, battery_cells=3, battery_capacity_mah=3000.0,
        )
        text = json.dumps(design.to_dict())
        rebuilt = DroneDesign.from_dict(json.loads(text))
        assert rebuilt.wheelbase_mm == 450.0

    def test_evaluation_dict_fields(self):
        evaluation = DroneDesign(
            wheelbase_mm=450.0, battery_cells=3, battery_capacity_mah=3000.0,
        ).evaluate()
        data = evaluation.as_dict()
        assert data["total_weight_g"] == pytest.approx(evaluation.total_weight_g)
        assert "frame" in data["weight_breakdown_g"]
        json.dumps(data)  # must be JSON-clean


class TestVoltageSag:
    def test_tired_battery_climbs_slower(self):
        def climb_height(used_fraction: float) -> float:
            model = DroneModel(
                mass_kg=1.071, wheelbase_mm=450.0, battery_cells=3,
                battery_capacity_mah=3000.0,
            )
            sim = FlightSimulator(model, physics_rate_hz=400.0)
            sim.battery.used_mah = sim.battery.usable_mah * used_fraction
            sim.goto([0.0, 0.0, 30.0])
            sim.run_for(3.0)
            return float(sim.body.state.position_m[2])

        fresh = climb_height(0.0)
        tired = climb_height(0.95)
        assert tired < fresh

    def test_hover_maintained_even_when_tired(self):
        model = DroneModel(
            mass_kg=1.071, wheelbase_mm=450.0, battery_cells=3,
            battery_capacity_mah=3000.0,
        )
        sim = FlightSimulator(model, physics_rate_hz=400.0)
        sim.battery.used_mah = sim.battery.usable_mah * 0.9
        sim.goto([0.0, 0.0, 3.0])
        sim.run_for(8.0)
        assert sim.body.state.position_m[2] == pytest.approx(3.0, abs=0.5)


class TestSlamSeedRobustness:
    @pytest.mark.parametrize("seed", [11, 101, 999])
    def test_pipeline_accuracy_across_seeds(self, seed):
        from repro.slam.pipeline import run_slam

        result = run_slam("MH01", max_frames=50, seed=seed)
        assert result.ate_rmse_m < 0.25
        assert result.map_points > 50
