"""Vectorized SLAM numeric kernels (the batch engine of the perception stack).

The scalar SLAM modules (:mod:`features`, :mod:`matching`, :mod:`tracking`,
:mod:`bundle_adjustment`) loop per descriptor pair or per observation; these
kernels evaluate the same arithmetic over stacked NumPy arrays.  They are the
perception-side analogue of :mod:`repro.core.batch` and follow the same
equivalence discipline:

* **Integer outputs are bit-for-bit.**  Hamming distances use a 256-entry
  popcount LUT over the packed uint8 XOR — value-identical to the scalar
  ``np.unpackbits`` reduction, so matcher decisions (ratio test, cross check,
  greedy projection matching) cannot diverge.

* **Per-element float outputs are bit-for-bit.**  Camera-frame transforms,
  projections, residuals, and numeric Jacobians are elementwise float64
  expressions written in the same operation order as the scalar code
  (``c*dx + s*dy`` etc.); NumPy evaluates them without FMA contraction, so
  each element equals the scalar value exactly.  Validity masks (behind-camera
  tests, ``z > 1e-6``) therefore agree exactly too.

* **Reductions are allclose, not bitwise.**  Normal-equation accumulation
  (``einsum`` / ``np.add.at``) pairs terms in a fixed, documented order —
  observation order for pose systems, (point-major, keyframe-minor) for
  landmark systems — but floating-point summation order still differs from
  the scalar one-at-a-time loop, so accumulated sums match to ~1e-12 relative,
  not bitwise.  Downstream *decisions* (skip masks, used counts, raised
  errors) only depend on the bit-exact per-element values.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.analysis.markers import pure
from repro.slam.dataset import CameraModel

#: Popcount of every byte value; ``_POPCOUNT[a ^ b]`` summed over the 32
#: descriptor bytes is the Hamming distance.  Built with unpackbits so the
#: table is definitionally consistent with the scalar reduction.
_POPCOUNT = (
    np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1)
    .sum(axis=1)
    .astype(np.uint8)
)

#: Numeric-differentiation step shared by the scalar Jacobians.
JACOBIAN_EPSILON = 1e-6

#: Behind-camera threshold of :meth:`CameraModel.project`.
MIN_CAMERA_Z = 1e-6


@pure
def hamming_matrix(descriptors_a: np.ndarray, descriptors_b: np.ndarray) -> np.ndarray:
    """All-pairs Hamming distances, (A, B) uint16, via the popcount LUT.

    Bit-for-bit equal to the scalar ``np.unpackbits(xor).sum()`` kernel: both
    compute exact bit counts <= 256, so the uint16 casts agree.
    """
    xor = np.bitwise_xor(descriptors_a[:, None, :], descriptors_b[None, :, :])
    return _POPCOUNT[xor].sum(axis=2).astype(np.uint16)


@pure
def hamming_rows(descriptors: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Hamming distance of each descriptor row against one query descriptor."""
    xor = np.bitwise_xor(descriptors, query[None, :])
    return _POPCOUNT[xor].sum(axis=1)


@pure
def camera_points(
    landmarks_m: np.ndarray, position_m: np.ndarray, yaw_rad: float
) -> np.ndarray:
    """Batch of :func:`repro.slam.tracking.camera_point` for one pose.

    Elementwise float64 in the scalar operation order, so every row is
    bit-identical to the scalar transform of that landmark.
    """
    c, s = math.cos(yaw_rad), math.sin(yaw_rad)
    delta = landmarks_m - position_m
    bx = c * delta[:, 0] + s * delta[:, 1]
    by = -s * delta[:, 0] + c * delta[:, 1]
    bz = delta[:, 2]
    return np.stack([-by, -bz, bx], axis=1)


@pure
def camera_points_posed(
    landmarks_m: np.ndarray,
    positions_m: np.ndarray,
    cos_yaw: np.ndarray,
    sin_yaw: np.ndarray,
) -> np.ndarray:
    """Camera-frame points for per-row (landmark, pose) pairs.

    ``cos_yaw``/``sin_yaw`` must come from ``math.cos``/``math.sin`` of each
    pose's yaw (one libm call per pose, broadcast to its pairs) so rows stay
    bit-identical to the scalar transform.
    """
    delta = landmarks_m - positions_m
    bx = cos_yaw * delta[:, 0] + sin_yaw * delta[:, 1]
    by = -sin_yaw * delta[:, 0] + cos_yaw * delta[:, 1]
    bz = delta[:, 2]
    return np.stack([-by, -bz, bx], axis=1)


@pure
def project_points(
    points_camera: np.ndarray, camera: CameraModel
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch pinhole projection; callers must pre-mask ``z > MIN_CAMERA_Z``."""
    x = points_camera[:, 0]
    y = points_camera[:, 1]
    z = points_camera[:, 2]
    return camera.fx * x / z + camera.cx, camera.fy * y / z + camera.cy


def _raise_behind_camera(z_columns, row: int) -> None:
    """Re-raise the scalar projector's error for the first bad perturbation.

    ``z_columns`` lists the perturbed z arrays in the scalar perturbation
    order; ``row`` is the first pair whose Jacobian the scalar loop would
    have failed on.
    """
    for z_col in z_columns:
        z = float(z_col[row])
        if z <= MIN_CAMERA_Z:
            raise ValueError(f"point behind camera: z={z}")
    raise AssertionError("no offending perturbation found")  # pragma: no cover


def pose_blocks(
    landmarks_m: np.ndarray,
    pixels: np.ndarray,
    position_m: np.ndarray,
    yaw_rad: float,
    camera: CameraModel,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Residuals and 2x4 pose Jacobians for every valid correspondence.

    Returns ``(valid_indices, residuals (V, 2), jacobians (V, 2, 4))`` where
    validity is the scalar rule (camera-frame ``z > 1e-6``; invalid rows are
    the ones the scalar loop skips via the caught ValueError).  Replicates
    the scalar failure mode exactly: if a *perturbed* projection of a valid
    correspondence lands behind the camera, raises the projector's
    ``ValueError`` for the first offending (correspondence, perturbation) in
    scalar iteration order (x, y, z, then yaw).
    """
    cam = camera_points(landmarks_m, position_m, yaw_rad)
    valid = cam[:, 2] > MIN_CAMERA_Z
    idx = np.nonzero(valid)[0]
    if idx.size == 0:
        return idx, np.empty((0, 2)), np.empty((0, 2, 4))
    lm = landmarks_m[idx]
    base_cam = cam[idx]
    u, v = project_points(base_cam, camera)
    residuals = np.stack([u - pixels[idx, 0], v - pixels[idx, 1]], axis=1)
    base_uv = np.stack([u, v], axis=1)

    perturbed_cams = []
    for k in range(3):
        perturbed_position_m = position_m.copy()
        perturbed_position_m[k] += JACOBIAN_EPSILON
        perturbed_cams.append(camera_points(lm, perturbed_position_m, yaw_rad))
    perturbed_cams.append(camera_points(lm, position_m, yaw_rad + JACOBIAN_EPSILON))

    z_columns = [pc[:, 2] for pc in perturbed_cams]
    bad = (z_columns[0] <= MIN_CAMERA_Z) | (z_columns[1] <= MIN_CAMERA_Z)
    bad |= (z_columns[2] <= MIN_CAMERA_Z) | (z_columns[3] <= MIN_CAMERA_Z)
    if bad.any():
        _raise_behind_camera(z_columns, int(np.argmax(bad)))

    jacobians = np.empty((idx.size, 2, 4))
    for k, pc in enumerate(perturbed_cams):
        pu, pv = project_points(pc, camera)
        jacobians[:, 0, k] = (pu - base_uv[:, 0]) / JACOBIAN_EPSILON
        jacobians[:, 1, k] = (pv - base_uv[:, 1]) / JACOBIAN_EPSILON
    return idx, residuals, jacobians


def landmark_blocks(
    landmarks_m: np.ndarray,
    positions_m: np.ndarray,
    cos_yaw: np.ndarray,
    sin_yaw: np.ndarray,
    pixels: np.ndarray,
    camera: CameraModel,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Residuals and 2x3 landmark Jacobians for (landmark, pose) pairs.

    Same contract as :func:`pose_blocks`, but the perturbation runs over the
    landmark coordinates (the intersection half of bundle adjustment) and the
    pose is per-row.  Raises the scalar projector's ``ValueError`` for the
    first (pair, axis) whose perturbed point falls behind the camera.
    """
    cam = camera_points_posed(landmarks_m, positions_m, cos_yaw, sin_yaw)
    valid = cam[:, 2] > MIN_CAMERA_Z
    idx = np.nonzero(valid)[0]
    if idx.size == 0:
        return idx, np.empty((0, 2)), np.empty((0, 2, 3))
    lm = landmarks_m[idx]
    pos = positions_m[idx]
    c = cos_yaw[idx]
    s = sin_yaw[idx]
    base_cam = cam[idx]
    u, v = project_points(base_cam, camera)
    residuals = np.stack([u - pixels[idx, 0], v - pixels[idx, 1]], axis=1)
    base_uv = np.stack([u, v], axis=1)

    perturbed_cams = []
    for k in range(3):
        perturbed_lm_m = lm.copy()
        perturbed_lm_m[:, k] += JACOBIAN_EPSILON
        perturbed_cams.append(camera_points_posed(perturbed_lm_m, pos, c, s))

    z_columns = [pc[:, 2] for pc in perturbed_cams]
    bad = (z_columns[0] <= MIN_CAMERA_Z) | (z_columns[1] <= MIN_CAMERA_Z)
    bad |= z_columns[2] <= MIN_CAMERA_Z
    if bad.any():
        _raise_behind_camera(z_columns, int(np.argmax(bad)))

    jacobians = np.empty((idx.size, 2, 3))
    for k, pc in enumerate(perturbed_cams):
        pu, pv = project_points(pc, camera)
        jacobians[:, 0, k] = (pu - base_uv[:, 0]) / JACOBIAN_EPSILON
        jacobians[:, 1, k] = (pv - base_uv[:, 1]) / JACOBIAN_EPSILON
    return idx, residuals, jacobians


def bucketed_ranks(cells: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Round-robin rank of each keypoint within its grid cell.

    Returns ``(order, depth)`` where ``order`` is the stable cell-sorted
    permutation and ``depth[i]`` is the rank of ``order[i]`` inside its cell.
    Taking keypoints in ``np.lexsort((cells[order], depth))`` order is exactly
    the scalar extractor's round-robin (depth-major, cell-ascending) walk.
    """
    order = np.argsort(cells, kind="stable")
    sorted_cells = cells[order]
    n = sorted_cells.size
    depth = np.arange(n)
    if n:
        run_start = np.empty(n, dtype=bool)
        run_start[0] = True
        np.not_equal(sorted_cells[1:], sorted_cells[:-1], out=run_start[1:])
        starts = np.nonzero(run_start)[0]
        counts = np.diff(np.append(starts, n))
        depth = depth - np.repeat(starts, counts)
    return order, depth
