"""Telemetry recording and downlink summaries.

The communication layer "delivers stats to the ground station" (Section
2.1.3-B).  :class:`TelemetryLog` turns simulator samples into the compact
records a 915 MHz downlink would carry, plus mission-level summaries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

import numpy as np

from repro.sim.simulator import FlightSimulator, SimSample


@dataclass(frozen=True)
class TelemetryRecord:
    """One downlinked status record (the MAVLink-heartbeat class of data)."""

    time_s: float
    altitude_m: float
    ground_speed_m_s: float
    battery_soc: float
    battery_voltage_v: float
    power_w: float

    def encode(self) -> bytes:
        """Serialize as a fixed-width record (24 bytes of payload)."""
        values = np.array(
            [
                self.time_s,
                self.altitude_m,
                self.ground_speed_m_s,
                self.battery_soc,
                self.battery_voltage_v,
                self.power_w,
            ],
            dtype=np.float32,
        )
        return values.tobytes()

    @classmethod
    def decode(cls, payload: bytes) -> "TelemetryRecord":
        values = np.frombuffer(payload, dtype=np.float32)
        if values.size != 6:
            raise ValueError(f"telemetry payload must hold 6 floats, got {values.size}")
        return cls(
            time_s=float(values[0]),
            altitude_m=float(values[1]),
            ground_speed_m_s=float(values[2]),
            battery_soc=float(values[3]),
            battery_voltage_v=float(values[4]),
            power_w=float(values[5]),
        )


class TelemetryLog:
    """Accumulates downlink records from simulator samples.

    ``maxlen`` bounds the log as a ring buffer keeping the newest records —
    the black-box discipline long chaos campaigns need so memory stays flat
    no matter how many hours of flight are ingested.  ``None`` (the default)
    keeps every record, matching the original unbounded behaviour.
    """

    def __init__(
        self, downlink_rate_hz: float = 4.0, maxlen: Optional[int] = None
    ):
        if downlink_rate_hz <= 0:
            raise ValueError(f"downlink rate must be positive: {downlink_rate_hz}")
        if maxlen is not None and maxlen <= 0:
            raise ValueError(f"maxlen must be positive when set: {maxlen}")
        self.downlink_rate_hz = downlink_rate_hz
        self.maxlen = maxlen
        self.records: Deque[TelemetryRecord] = deque(maxlen=maxlen)
        self._next_due_s = 0.0

    def ingest(self, sample: SimSample) -> bool:
        """Record the sample if the downlink period elapsed; returns whether sent."""
        if sample.time_s + 1e-12 < self._next_due_s:
            return False
        self._next_due_s = sample.time_s + 1.0 / self.downlink_rate_hz
        self.records.append(
            TelemetryRecord(
                time_s=sample.time_s,
                altitude_m=float(sample.position_m[2]),
                ground_speed_m_s=float(np.linalg.norm(sample.velocity_m_s[0:2])),
                battery_soc=sample.battery_soc,
                battery_voltage_v=sample.battery_voltage_v,
                power_w=sample.electrical_power_w,
            )
        )
        return True

    def ingest_all(self, sim: FlightSimulator) -> int:
        """Ingest every recorded simulator sample; returns records sent."""
        sent = 0
        for sample in sim.samples:
            if self.ingest(sample):
                sent += 1
        return sent

    def summary(self) -> Dict[str, float]:
        """Mission summary a ground station would display."""
        if not self.records:
            raise ValueError("no telemetry records ingested")
        altitudes = [r.altitude_m for r in self.records]
        powers = [r.power_w for r in self.records]
        return {
            "duration_s": self.records[-1].time_s - self.records[0].time_s,
            "max_altitude_m": max(altitudes),
            "mean_power_w": float(np.mean(powers)),
            "peak_power_w": max(powers),
            "final_soc": self.records[-1].battery_soc,
            "records": float(len(self.records)),
        }
