"""Perception fault injection: feature droughts, corrupted frames, throttles.

PR 1's injectors attack the inner loop (sensors, power, propulsion, link).
This module attacks the *perception front end* the outer loop depends on:

* **feature drought** — texture loss (motion blur, over-exposure, a blank
  wall): most observations vanish for the window's duration;
* **frame corruption** — sensor/ISP faults: descriptor bits flip and
  keypoints jitter, so matching sees plausible-looking garbage;
* **compute throttle** — the platform's clock steps down (thermal, DVFS):
  frames are intact but per-frame throughput shrinks.

The injector wraps a :class:`~repro.slam.dataset.SyntheticSequence` and
duck-types the surface :class:`~repro.slam.pipeline.SlamPipeline` consumes,
so a faulted sequence drops into the pipeline unchanged.  Corruption is
deterministic: each frame's noise comes from a generator seeded by
``(seed, frame index)``, independent of generation order, and the wrapped
sequence's own stateful generator is consumed exactly as in a clean run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.faults.schedule import FaultKind, FaultSchedule
from repro.slam.dataset import (
    CameraModel,
    Frame,
    SequenceSpec,
    SyntheticSequence,
)


class PerceptionFaultInjector:
    """A sequence wrapper that corrupts frames per the fault schedule."""

    def __init__(
        self,
        sequence: SyntheticSequence,
        schedule: FaultSchedule,
        seed: int = 101,
    ):
        self.sequence = sequence
        self.schedule = schedule
        self.seed = seed
        self.droughts_applied = 0
        self.corruptions_applied = 0

    # -- duck-typed SyntheticSequence surface ----------------------------------

    @property
    def spec(self) -> SequenceSpec:
        return self.sequence.spec

    @property
    def camera(self) -> CameraModel:
        return self.sequence.camera

    @property
    def frame_count(self) -> int:
        return self.sequence.frame_count

    @property
    def landmarks_m(self) -> np.ndarray:
        return self.sequence.landmarks_m

    def descriptor_for(self, landmark_id: int, noise_bits: int = 0) -> np.ndarray:
        return self.sequence.descriptor_for(landmark_id, noise_bits)

    def generate_frame(self, index: int) -> Frame:
        """Render the clean frame, then land every active perception fault."""
        frame = self.sequence.generate_frame(index)
        for event in self.schedule.active(frame.timestamp_s):
            if event.kind is FaultKind.FEATURE_DROUGHT:
                frame = self._drought(frame, event.param_dict)
                self.droughts_applied += 1
            elif event.kind is FaultKind.FRAME_CORRUPTION:
                frame = self._corrupt(frame, event.param_dict)
                self.corruptions_applied += 1
        return frame

    # -- throttle queries (consumed by the deadline model, not the frames) -----

    def throttle_scale(self, time_s: float) -> float:
        """Fraction of nominal compute throughput available at ``time_s``."""
        scale = 1.0
        for event in self.schedule.active(time_s):
            if event.kind is FaultKind.COMPUTE_THROTTLE:
                scale = min(scale, event.param_dict.get("scale", 0.5))
        return scale

    def frame_scales(self, frames: int, frame_rate_hz: float = 20.0) -> List[float]:
        """Per-frame throughput scales for ``scaled_frame_deadlines``."""
        if frames <= 0:
            raise ValueError("frames must be positive")
        if frame_rate_hz <= 0:
            raise ValueError("frame rate must be positive")
        return [self.throttle_scale(i / frame_rate_hz) for i in range(frames)]

    # -- per-kind frame mutations ----------------------------------------------

    def _frame_rng(self, index: int) -> np.random.Generator:
        # Seeded by (injector seed, frame index): bit-identical regardless of
        # how many times or in what order frames are generated.
        return np.random.default_rng([self.seed, index])

    def _drought(self, frame: Frame, params: Dict[str, float]) -> Frame:
        keep_fraction = params.get("keep_fraction", 0.1)
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in [0, 1]: {keep_fraction}")
        rng = self._frame_rng(frame.index)
        kept = rng.random(frame.observation_count) < keep_fraction
        return Frame(
            index=frame.index,
            timestamp_s=frame.timestamp_s,
            true_position_m=frame.true_position_m,
            true_yaw_rad=frame.true_yaw_rad,
            landmark_ids=frame.landmark_ids[kept],
            keypoints_px=frame.keypoints_px[kept],
            descriptors=frame.descriptors[kept],
        )

    def _corrupt(self, frame: Frame, params: Dict[str, float]) -> Frame:
        bit_flip_fraction = params.get("bit_flip_fraction", 0.25)
        pixel_sigma_px = params.get("pixel_sigma_px", 3.0)
        if not 0.0 <= bit_flip_fraction <= 1.0:
            raise ValueError(
                f"bit_flip_fraction must be in [0, 1]: {bit_flip_fraction}"
            )
        rng = self._frame_rng(frame.index)
        descriptors = frame.descriptors.copy()
        if descriptors.size and bit_flip_fraction > 0.0:
            flips = rng.random((descriptors.shape[0], descriptors.shape[1], 8))
            mask = np.packbits(
                (flips < bit_flip_fraction).astype(np.uint8), axis=-1
            ).reshape(descriptors.shape)
            descriptors ^= mask
        keypoints = frame.keypoints_px.copy()
        if keypoints.size and pixel_sigma_px > 0.0:
            keypoints += rng.normal(0.0, pixel_sigma_px, keypoints.shape)
        return Frame(
            index=frame.index,
            timestamp_s=frame.timestamp_s,
            true_position_m=frame.true_position_m,
            true_yaw_rad=frame.true_yaw_rad,
            landmark_ids=frame.landmark_ids,
            keypoints_px=keypoints,
            descriptors=descriptors,
        )


@dataclass(frozen=True)
class PerceptionScenario:
    """One SLAM sequence x perception-fault-schedule combination."""

    name: str
    sequence: str
    schedule_factory: Callable[[], FaultSchedule]
    frames: int = 160
    seed: int = 11

    def __post_init__(self) -> None:
        if self.frames <= 0:
            raise ValueError(f"frames must be positive: {self.frames}")


def perception_scenarios() -> Tuple[PerceptionScenario, ...]:
    """The deterministic perception-fault matrix the degradation study runs.

    Windows sit mid-sequence with several seconds of clean frames after, so
    a working relocalization ladder has room to demonstrate recovery.
    """
    return (
        PerceptionScenario(
            name="drought-short",
            sequence="MH01",
            schedule_factory=lambda: FaultSchedule().add(
                FaultKind.FEATURE_DROUGHT,
                start_s=3.0,
                end_s=4.0,
                keep_fraction=0.12,
            ),
        ),
        PerceptionScenario(
            name="drought-long",
            sequence="MH01",
            schedule_factory=lambda: FaultSchedule().add(
                FaultKind.FEATURE_DROUGHT,
                start_s=3.0,
                end_s=5.5,
                keep_fraction=0.05,
            ),
        ),
        PerceptionScenario(
            name="drought-repeat",
            sequence="MH02",
            schedule_factory=lambda: FaultSchedule()
            .add(
                FaultKind.FEATURE_DROUGHT,
                start_s=2.0,
                end_s=3.0,
                keep_fraction=0.1,
            )
            .add(
                FaultKind.FEATURE_DROUGHT,
                start_s=5.0,
                end_s=6.0,
                keep_fraction=0.1,
            ),
        ),
        PerceptionScenario(
            name="corruption-burst",
            sequence="MH01",
            schedule_factory=lambda: FaultSchedule().add(
                FaultKind.FRAME_CORRUPTION,
                start_s=3.5,
                end_s=5.0,
                bit_flip_fraction=0.3,
                pixel_sigma_px=5.0,
            ),
        ),
        PerceptionScenario(
            name="corruption-then-drought",
            sequence="V101",
            schedule_factory=lambda: FaultSchedule()
            .add(
                FaultKind.FRAME_CORRUPTION,
                start_s=2.5,
                end_s=3.5,
                bit_flip_fraction=0.25,
                pixel_sigma_px=4.0,
            )
            .add(
                FaultKind.FEATURE_DROUGHT,
                start_s=4.0,
                end_s=5.0,
                keep_fraction=0.08,
            ),
        ),
        PerceptionScenario(
            name="throttle-sustained",
            sequence="MH01",
            schedule_factory=lambda: FaultSchedule().add(
                FaultKind.COMPUTE_THROTTLE,
                start_s=2.0,
                end_s=7.0,
                scale=0.5,
            ),
        ),
    )
