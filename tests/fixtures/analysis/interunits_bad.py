"""Interprocedural-units fixture: mismatches only visible through summaries."""


def hover_power_w(mass_kg: float) -> float:
    return mass_kg * 9.81


def takeoff_thrust_n(mass_kg: float) -> float:
    return mass_kg * 9.81 * 1.2


def mixed_assignment(pack_voltage_v: float) -> float:
    power_w = hover_power_w(1.2)  # clean: [W] target, [W] summary
    thrust_n = hover_power_w(1.2)  # BAD: [N] target, [W] summary
    return thrust_n / pack_voltage_v


def total_weight_g(frame_mass_kg: float) -> float:
    return frame_mass_kg  # BAD: declared [g], returns [kg]


def mixed_binding(burn_time_s: float) -> float:
    return takeoff_thrust_n(burn_time_s)  # BAD: param mass_kg bound to [s]


def clean_chain(mass_kg: float) -> float:
    lift_n = takeoff_thrust_n(mass_kg)  # clean: [N] target, [N] summary
    margin_n = lift_n  # clean: same unit through the flow env
    return margin_n
