"""Figure 10: (a-c) total power vs drone weight per wheelbase and battery
configuration, with best-configuration flight times and commercial-drone
validation diamonds; (d-f) the computation-power footprint for 3 W and 20 W
chips at hovering and maneuvering."""

import pytest

from repro.components.commercial import drones_for_wheelbase
from repro.core.explorer import computation_footprint, sweep_wheelbase

from conftest import print_table


def test_fig10abc_power_vs_weight(benchmark, sweeps):
    # Time one representative sweep; the fixture already holds all three.
    benchmark.pedantic(
        sweep_wheelbase, args=(450.0,), rounds=1, iterations=1
    )

    for wheelbase, sweep in sweeps.items():
        rows = []
        for cells, points in sorted(sweep.by_cells().items()):
            samples = ", ".join(
                f"{p.weight_g:.0f}g:{p.hover_power_w:.0f}W"
                for p in points[:: max(1, len(points) // 5)]
            )
            rows.append((f"{cells}S", samples))
        best = sweep.best_configuration()
        rows.append(
            (
                "BEST",
                f"{best.cells}S {best.capacity_mah:.0f} mAh -> "
                f"{best.flight_time_min:.1f} min @ {best.weight_g:.0f} g",
            )
        )
        for drone in drones_for_wheelbase(wheelbase, tolerance_mm=150.0):
            rows.append(
                (
                    "diamond",
                    f"{drone.name}: {drone.weight_g:.0f} g, "
                    f"{drone.average_flight_power_w:.0f} W implied",
                )
            )
        print_table(
            f"Figure 10{'abc'[list(sweeps).index(wheelbase)]} — "
            f"{wheelbase:.0f} mm power vs weight",
            ("series", "weight:power samples / summary"),
            rows,
        )

    # Shape: every wheelbase has a best configuration above 10 minutes.
    for sweep in sweeps.values():
        best = sweep.best_configuration()
        assert best is not None
        assert best.flight_time_min > 10.0
    # Shape: larger frames reach heavier feasible designs.
    assert sweeps[800.0].weight_range_g()[1] > sweeps[100.0].weight_range_g()[1]


def test_fig10def_computation_footprint(benchmark, sweeps):
    footprints = benchmark.pedantic(
        lambda: {wb: computation_footprint(s) for wb, s in sweeps.items()},
        rounds=1,
        iterations=1,
    )

    for wheelbase, footprint in footprints.items():
        rows = []
        for chip_power, series in footprint.items():
            hover = [p.share_hovering for p in series]
            maneuver = [p.share_maneuvering for p in series]
            rows.append(
                (
                    f"{chip_power:.0f}W @ hovering",
                    f"{min(hover):.1%} .. {max(hover):.1%}",
                )
            )
            rows.append(
                (
                    f"{chip_power:.0f}W @ maneuvering",
                    f"{min(maneuver):.1%} .. {max(maneuver):.1%}",
                )
            )
        print_table(
            f"Figure 10{'def'[list(footprints).index(wheelbase)]} — "
            f"{wheelbase:.0f} mm computation power share",
            ("chip / regime", "share range across weights"),
            rows,
        )

    for wheelbase, footprint in footprints.items():
        basic = footprint[3.0]
        advanced = footprint[20.0]
        # Paper: 3 W chips contribute <5% on mid/large frames; the lightest
        # 100 mm designs reach low double digits.
        basic_cap = 0.15 if wheelbase <= 100.0 else 0.08
        assert max(p.share_hovering for p in basic) < basic_cap
        # Paper: overall band is 2-30%.
        assert 0.02 < max(p.share_hovering for p in advanced) < 0.40
        # Paper: maneuvering drops the share (to ~10% average for 20 W).
        for point in advanced:
            assert point.share_maneuvering < point.share_hovering

    # Paper: jumps occur where heavier drones switch to higher-cell
    # batteries.  With our continuous component fits the discrete jumps
    # become crossovers; the mechanism shows as the lowest-power frontier
    # transitioning 1S -> 3S -> 6S with increasing weight.
    from repro.core.explorer import _lowest_power_frontier

    frontier_cells = [p.cells for p in _lowest_power_frontier(sweeps[450.0].points)]
    print(f"450 mm lowest-power frontier cell counts: {frontier_cells}")
    assert frontier_cells[0] < frontier_cells[-1]
    assert 6 in frontier_cells and 1 in frontier_cells
