"""Equivalence tests for the ensemble flight simulator.

The contract under test (see ``repro.sim.ensemble`` and DESIGN.md's
Performance section): an :class:`EnsembleFlightSimulator` stepping N lanes
in lockstep is **bit-for-bit** equal to N independent scalar
:class:`FlightSimulator` runs — state trajectories, telemetry samples,
sensor RNG streams, mixer counters, and (through the chaos driver) entire
campaign fingerprints including black-box crash traces.  Every assertion
here is exact equality, never ``allclose``.
"""

import numpy as np
import pytest

import repro
from repro.chaos import (
    CampaignConfig,
    run_campaign,
    run_campaign_supervised,
    run_trials_ensemble,
    verify_replay,
)
from repro.chaos.campaign import TrialSpec, generate_campaign
from repro.core.parallel import SweepRunnerConfig
from repro.faults.scenarios import DEFAULT_MODEL
from repro.faults.schedule import FaultSchedule
from repro.physics.environment import Wind
from repro.sim import ensemble as ensemble_module
from repro.sim.ensemble import EnsembleFlightSimulator, hover_gust_monte_carlo
from repro.sim.simulator import DroneModel, FlightSimulator

#: Keep the raw-stepping tests at the campaign default rate — cheap, and
#: the rate the chaos equivalence below exercises anyway.
RATE_HZ = 200.0

TARGETS = ([2.0, 0.0, 4.0], [0.0, -3.0, 5.0], [-1.0, 1.0, 6.0])


def _model() -> DroneModel:
    return DroneModel(**DEFAULT_MODEL)


def _wind(seed: int) -> Wind:
    return Wind(gust_speed_m_s=2.0, seed=seed)


def _assert_state_equal(state, ref) -> None:
    np.testing.assert_array_equal(state.position_m, ref.position_m)
    np.testing.assert_array_equal(state.velocity_m_s, ref.velocity_m_s)
    np.testing.assert_array_equal(state.quaternion, ref.quaternion)
    np.testing.assert_array_equal(
        state.angular_velocity_rad_s, ref.angular_velocity_rad_s
    )


def _assert_samples_equal(samples, ref_samples) -> None:
    assert len(samples) == len(ref_samples)
    for got, want in zip(samples, ref_samples):
        assert got.time_s == want.time_s
        np.testing.assert_array_equal(got.position_m, want.position_m)
        np.testing.assert_array_equal(got.velocity_m_s, want.velocity_m_s)
        np.testing.assert_array_equal(got.euler_rad, want.euler_rad)
        np.testing.assert_array_equal(got.motor_thrusts_n, want.motor_thrusts_n)
        assert got.electrical_power_w == want.electrical_power_w
        assert got.battery_voltage_v == want.battery_voltage_v
        assert got.battery_soc == want.battery_soc


def _assert_lane_matches(lane, sim) -> None:
    _assert_state_equal(lane.body.state, sim.body.state)
    assert lane.battery.state_of_charge == sim.battery.state_of_charge
    assert lane.depleted == sim.depleted
    assert lane.ekf_resets == sim.ekf_resets
    mixer = lane.controller.thrust_controller.mixer
    ref_mixer = sim.controller.thrust_controller.mixer
    assert mixer.mixes == ref_mixer.mixes
    assert mixer.saturations == ref_mixer.saturations
    _assert_samples_equal(lane.samples, sim.samples)


class TestLockstepEquivalence:
    @pytest.mark.parametrize("use_ekf", [False, True])
    def test_three_lanes_match_scalar_runs(self, use_ekf):
        """Distinct targets + per-lane gusty wind, stepped in uneven chunks."""
        model = _model()
        ens = EnsembleFlightSimulator(
            model,
            n_lanes=3,
            physics_rate_hz=RATE_HZ,
            use_ekf=use_ekf,
            winds=[_wind(10 + i) for i in range(3)],
        )
        scalars = [
            FlightSimulator(
                model,
                physics_rate_hz=RATE_HZ,
                use_ekf=use_ekf,
                wind=_wind(10 + i),
            )
            for i in range(3)
        ]
        for index, target in enumerate(TARGETS):
            ens.set_lane_target(index, target)
            scalars[index].goto(target)
        for chunk_s in (0.5, 0.75, 1.0):
            ens.run_for(chunk_s)
            for sim in scalars:
                sim.run_for(chunk_s)
        for index, sim in enumerate(scalars):
            _assert_lane_matches(ens.lane(index), sim)

    def test_gust_monte_carlo_matches_scalar_loop(self):
        """`hover_gust_monte_carlo` == one scalar flight per wind seed."""
        model = _model()
        seeds = (3, 5, 9)
        target = [0.0, 0.0, 5.0]
        errors = hover_gust_monte_carlo(
            model,
            seeds,
            gust_speed_m_s=3.0,
            duration_s=4.0,
            physics_rate_hz=RATE_HZ,
            target_m=target,
        )
        for seed, error in zip(seeds, errors):
            sim = FlightSimulator(
                model,
                physics_rate_hz=RATE_HZ,
                wind=Wind(
                    gust_speed_m_s=3.0, correlation_time_s=1.5, seed=seed
                ),
            )
            sim.goto(target)
            sim.run_for(4.0)
            assert error == sim.hover_position_error_m(
                np.asarray(target), since_s=2.0
            )


class TestFaultFacades:
    def test_sensor_and_actuator_faults_desync_and_restore(self):
        """Fault-facade writes mid-run stay bitwise equal to scalar writes.

        GPS denial and a barometer freeze force the affected lanes off the
        shared block RNG onto materialized per-lane generators; restoring
        the sensors must keep the streams aligned with the scalar runs.
        """
        model = _model()
        ens = EnsembleFlightSimulator(model, n_lanes=2, physics_rate_hz=RATE_HZ)
        scalars = [
            FlightSimulator(model, physics_rate_hz=RATE_HZ) for _ in range(2)
        ]
        for index in range(2):
            ens.set_lane_target(index, TARGETS[index])
            scalars[index].goto(TARGETS[index])
        ens.run_for(1.0)
        for sim in scalars:
            sim.run_for(1.0)

        lanes = [ens.lane(0), ens.lane(1)]
        for target in (lanes[0], scalars[0]):
            target.sensors.gps.available = False
            target.sensors.imu.accel_bias_m_s2 = (0.3, -0.1, 0.05)
        for target in (lanes[1], scalars[1]):
            target.sensors.barometer.frozen = True
            target.controller.thrust_controller.mixer.set_motor_health(2, 0.7)
            target.battery.inject_drain(200.0)
            target.battery.fault_resistance_ohm = 0.05
        ens.run_for(1.0)
        for sim in scalars:
            sim.run_for(1.0)

        for target in (lanes[0], scalars[0]):
            target.sensors.gps.available = True
            target.sensors.imu.accel_bias_m_s2 = (0.0, 0.0, 0.0)
        for target in (lanes[1], scalars[1]):
            target.sensors.barometer.frozen = False
            target.controller.thrust_controller.mixer.set_motor_health(2, 1.0)
        ens.run_for(1.0)
        for sim in scalars:
            sim.run_for(1.0)

        for index, sim in enumerate(scalars):
            _assert_lane_matches(lanes[index], sim)
            assert (
                lanes[index].sensors.gps_fix_age_s()
                == sim.sensors.gps_fix_age_s()
            )


class TestMidFlightDefection:
    def test_defected_lane_and_survivors_stay_bitwise(self):
        model = _model()
        ens = EnsembleFlightSimulator(
            model,
            n_lanes=3,
            physics_rate_hz=RATE_HZ,
            winds=[_wind(20 + i) for i in range(3)],
        )
        scalars = [
            FlightSimulator(model, physics_rate_hz=RATE_HZ, wind=_wind(20 + i))
            for i in range(3)
        ]
        for index, target in enumerate(TARGETS):
            ens.set_lane_target(index, target)
            scalars[index].goto(target)
        ens.run_for(1.5)
        for sim in scalars:
            sim.run_for(1.5)

        deserter = ens.lane(1)
        materialized = deserter.defect()
        assert not deserter.attached
        assert deserter.defect() is materialized  # idempotent
        for chunk_s in (1.0, 0.5):
            ens.run_for(chunk_s)
            deserter.run_for(chunk_s)  # facade delegates to the scalar sim
            for sim in scalars:
                sim.run_for(chunk_s)
        for index, sim in enumerate(scalars):
            _assert_lane_matches(ens.lane(index), sim)

    def test_attached_lane_refuses_run_for(self):
        ens = EnsembleFlightSimulator(_model(), n_lanes=1, physics_rate_hz=RATE_HZ)
        with pytest.raises(RuntimeError, match="attached"):
            ens.lane(0).run_for(0.1)


class TestChaosCampaignEquivalence:
    def test_engines_produce_identical_campaigns(self):
        """Fingerprints (and crash traces) match across engines + replay."""
        config = CampaignConfig(campaign_seed=77, trials=8, duration_s=12.0)
        scalar = run_campaign(config)
        ensemble = run_campaign(config, engine="ensemble", ensemble_width=3)
        assert [r.metrics() for r in scalar] == [
            r.metrics() for r in ensemble
        ]
        for ref, got in zip(scalar, ensemble):
            assert (ref.trace is None) == (got.trace is None)
            if ref.trace is not None:
                assert ref.trace.fingerprint() == got.trace.fingerprint()
        assert verify_replay(ensemble[0], config)

    def test_64_trial_campaign_replays_identically(self):
        """The ISSUE acceptance shape: 64 chaos trials, both engines."""
        config = CampaignConfig(campaign_seed=9, trials=64, duration_s=10.0)
        scalar = run_campaign(config)
        ensemble = run_campaign(config, engine="ensemble")
        assert len(ensemble) == 64
        assert [r.metrics() for r in scalar] == [
            r.metrics() for r in ensemble
        ]
        for ref, got in zip(scalar, ensemble):
            if ref.trace is not None:
                assert got.trace is not None
                assert ref.trace.fingerprint() == got.trace.fingerprint()

    def test_parallel_and_supervised_paths_agree(self):
        config = CampaignConfig(campaign_seed=5, trials=6, duration_s=8.0)
        base = run_campaign(config, engine="ensemble", ensemble_width=4)
        parallel = run_campaign(
            config,
            SweepRunnerConfig(parallel=True, max_workers=2, chunk_size=1),
            engine="ensemble",
            ensemble_width=2,
        )
        assert [r.metrics() for r in base] == [
            r.metrics() for r in parallel
        ]
        supervised = run_campaign_supervised(
            config, engine="ensemble", ensemble_width=4
        )
        assert not supervised.quarantined
        assert [r.metrics() for r in base] == [
            r.metrics() for r in supervised.results
        ]


class TestEnsembleApi:
    def test_unknown_engine_rejected(self):
        config = CampaignConfig(trials=2, duration_s=8.0)
        with pytest.raises(ValueError, match="engine"):
            run_campaign(config, engine="warp")
        with pytest.raises(ValueError, match="engine"):
            run_campaign_supervised(config, engine="warp")

    def test_nonpositive_width_rejected(self):
        config = CampaignConfig(trials=2, duration_s=8.0)
        specs = generate_campaign(config)
        with pytest.raises(ValueError, match="width"):
            run_trials_ensemble(specs, config, ensemble_width=0)

    def test_mixed_ekf_specs_partition_in_input_order(self):
        """use_ekf is per-ensemble constant; results come back in order."""
        config = CampaignConfig(trials=4, duration_s=8.0)
        specs = [
            TrialSpec(
                campaign_seed=1,
                trial_index=index,
                link_seed=100 + index,
                schedule=FaultSchedule(),
                use_ekf=(index % 2 == 1),
                heartbeats=False,
                offload=False,
            )
            for index in range(4)
        ]
        results = run_trials_ensemble(specs, config)
        assert [r.spec.trial_index for r in results] == [0, 1, 2, 3]
        assert [r.spec.use_ekf for r in results] == [False, True, False, True]

    def test_clear_all_caches_drops_ensemble_scratch(self):
        ens = EnsembleFlightSimulator(
            _model(), n_lanes=2, physics_rate_hz=RATE_HZ, use_ekf=True
        )
        ens.set_lane_target(0, TARGETS[0])
        ens.run_for(0.2)
        assert ensemble_module._SCRATCH
        repro.clear_all_caches()
        assert not ensemble_module._SCRATCH
        # The pool repopulates transparently on the next run.
        ens.run_for(0.2)
        assert ensemble_module._SCRATCH
