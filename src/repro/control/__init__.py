"""Inner-/outer-loop control stack (paper Section 2.1.3, Figure 6, Table 2)."""

from repro.control.attitude import AttitudeController
from repro.control.cascade import (
    ControlRates,
    HierarchicalController,
    StateTargets,
    TargetMode,
)
from repro.control.estimation import ComplementaryFilter, InsEkf
from repro.control.indi import IndiRateController
from repro.control.mixer import MotorMixer
from repro.control.pid import PidController
from repro.control.position import (
    PositionController,
    VelocityController,
    acceleration_to_attitude_thrust,
)
from repro.control.thrust import ThrustController

__all__ = [
    "AttitudeController",
    "ControlRates",
    "HierarchicalController",
    "StateTargets",
    "TargetMode",
    "ComplementaryFilter",
    "InsEkf",
    "IndiRateController",
    "MotorMixer",
    "PidController",
    "PositionController",
    "VelocityController",
    "acceleration_to_attitude_thrust",
    "ThrustController",
]
