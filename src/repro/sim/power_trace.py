"""Power-trace reconstruction (paper Figure 16).

Figure 16a is the RPi's USB-metered power across software phases
(disconnected -> autopilot -> +SLAM idle -> +SLAM flying -> shutdown);
Figure 16b is the whole-drone oscilloscope trace during a flight.  This
module reconstructs both: phased compute-power synthesis for (a) and
flight-simulator integration for (b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.sim.missions import Mission, figure16_mission
from repro.sim.simulator import DroneModel, FlightSimulator

#: Measured RPi power levels from Section 5.1 (W).
RPI_AUTOPILOT_W = 3.39
RPI_AUTOPILOT_SLAM_IDLE_W = 4.05
RPI_AUTOPILOT_SLAM_FLYING_W = 4.56
RPI_SLAM_PEAK_W = 5.0
RPI_SHUTDOWN_COMPONENTS_W = 1.0

#: Oscilloscope/USB-meter sampling setup from Section 5's experimental setup.
USB_METER_RATE_HZ = 2.0       # one reading every half second
OSCILLOSCOPE_RATE_HZ = 50.0   # one reading every 20 ms


@dataclass(frozen=True)
class PowerPhase:
    """One labelled segment of a power trace."""

    label: str
    duration_s: float
    mean_power_w: float
    fluctuation_w: float = 0.05

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"phase duration must be positive: {self.duration_s}")
        if self.mean_power_w < 0 or self.fluctuation_w < 0:
            raise ValueError("power levels cannot be negative")


@dataclass
class PowerTrace:
    """A sampled power time series with phase annotations."""

    times_s: np.ndarray
    powers_w: np.ndarray
    phase_labels: List[str] = field(default_factory=list)
    phase_boundaries_s: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.times_s.shape != self.powers_w.shape:
            raise ValueError("times and powers must have the same shape")

    def mean_power_w(self, start_s: float = 0.0, end_s: float = None) -> float:
        end = self.times_s[-1] if end_s is None else end_s
        mask = (self.times_s >= start_s) & (self.times_s <= end)
        if not np.any(mask):
            raise ValueError(f"no samples in window [{start_s}, {end}]")
        return float(np.mean(self.powers_w[mask]))

    def peak_power_w(self) -> float:
        return float(np.max(self.powers_w))

    def phase_mean_w(self, label: str) -> float:
        """Mean power within the named phase."""
        if label not in self.phase_labels:
            raise KeyError(
                f"unknown phase {label!r}; phases: {self.phase_labels}"
            )
        index = self.phase_labels.index(label)
        start = self.phase_boundaries_s[index]
        end = self.phase_boundaries_s[index + 1]
        return self.mean_power_w(start, end - 1e-9)

    def energy_j(self) -> float:
        """Integrated energy of the whole trace (J)."""
        integrate = getattr(np, "trapezoid", None) or np.trapz
        return float(integrate(self.powers_w, self.times_s))


def synthesize_phased_trace(
    phases: Sequence[PowerPhase],
    sample_rate_hz: float = USB_METER_RATE_HZ,
    seed: int = 7,
) -> PowerTrace:
    """Build a trace from phase definitions (the Figure 16a method)."""
    if not phases:
        raise ValueError("need at least one phase")
    if sample_rate_hz <= 0:
        raise ValueError(f"sample rate must be positive: {sample_rate_hz}")
    rng = np.random.default_rng(seed)
    times: List[float] = []
    powers: List[float] = []
    boundaries = [0.0]
    labels = []
    clock = 0.0
    for phase in phases:
        count = max(1, int(round(phase.duration_s * sample_rate_hz)))
        for index in range(count):
            times.append(clock + index / sample_rate_hz)
            powers.append(
                max(
                    0.0,
                    phase.mean_power_w
                    + float(rng.normal(0.0, phase.fluctuation_w)),
                )
            )
        clock += phase.duration_s
        boundaries.append(clock)
        labels.append(phase.label)
    return PowerTrace(
        times_s=np.asarray(times),
        powers_w=np.asarray(powers),
        phase_labels=labels,
        phase_boundaries_s=boundaries,
    )


def rpi_power_phases(
    slam_active_power_w: float = RPI_AUTOPILOT_SLAM_FLYING_W,
) -> List[PowerPhase]:
    """The Figure 16a phase script with the paper's measured levels."""
    return [
        PowerPhase("disconnected", 30.0, 0.0, fluctuation_w=0.0),
        PowerPhase("autopilot", 150.0, RPI_AUTOPILOT_W, fluctuation_w=0.08),
        PowerPhase(
            "autopilot+slam-idle", 150.0, RPI_AUTOPILOT_SLAM_IDLE_W,
            fluctuation_w=0.10,
        ),
        PowerPhase(
            "autopilot+slam-flying", 300.0, slam_active_power_w,
            fluctuation_w=0.22,
        ),
        PowerPhase(
            "shutdown-components-powered", 60.0, RPI_SHUTDOWN_COMPONENTS_W,
            fluctuation_w=0.03,
        ),
    ]


def figure16a_trace(seed: int = 7) -> PowerTrace:
    """Reconstruct the RPi power trace of Figure 16a."""
    return synthesize_phased_trace(rpi_power_phases(), seed=seed)


def figure16b_trace(
    model: DroneModel = None,
    mission: Mission = None,
    physics_rate_hz: float = 400.0,
) -> PowerTrace:
    """Reconstruct the whole-drone flight power trace of Figure 16b.

    Runs the closed-loop simulator through the takeoff/hover/maneuver/land
    mission and samples electrical power at the oscilloscope rate.
    """
    if model is None:
        # The paper's drone: ~1.07 kg on a 450 mm frame, 3S 3000 mAh.
        model = DroneModel(
            mass_kg=1.071,
            wheelbase_mm=450.0,
            battery_cells=3,
            battery_capacity_mah=3000.0,
            compute_power_w=RPI_AUTOPILOT_SLAM_FLYING_W,
            sensors_power_w=1.0,
        )
    if mission is None:
        mission = figure16_mission()
    sim = FlightSimulator(
        model,
        physics_rate_hz=physics_rate_hz,
        record_rate_hz=OSCILLOSCOPE_RATE_HZ,
    )
    mission.run(sim)
    times = np.array([s.time_s for s in sim.samples])
    powers = np.array([s.electrical_power_w for s in sim.samples])
    boundaries = [0.0]
    labels = []
    clock = 0.0
    for phase in mission.phases:
        clock += phase.duration_s
        boundaries.append(clock)
        labels.append(phase.kind.value)
    return PowerTrace(
        times_s=times,
        powers_w=powers,
        phase_labels=labels,
        phase_boundaries_s=boundaries,
    )
