"""Ensemble flight simulator: N closed-loop trials stepped in lockstep.

A chaos campaign (or a gust/degradation Monte Carlo) is many *independent*
closed-loop flights of the same airframe.  The scalar
:class:`~repro.sim.simulator.FlightSimulator` re-executes the same
rigid-body / EKF / battery / mixer arithmetic once per trial in pure-Python
loops — the last major serial hot path after the design-space and SLAM
kernels were vectorized.  :class:`EnsembleFlightSimulator` holds N trials'
state as structure-of-arrays (rigid body ``(N,3)``/``(N,4)``, EKF mean and
covariance ``(N,9)``/``(N,9,9)``, battery, per-motor thrust and health
``(N,4)``) and advances every *live* lane with masked NumPy kernels, while
per-trial scalar control flow (the autopilot's failsafe ladder, fault
windows, mission phases) runs over the mask through per-lane facades.

The equivalence contract is the strictest tier in DESIGN.md: **bit-for-bit**
per lane against the scalar oracle.  Campaign fingerprints fold ~15k
closed-loop ticks of chaotic feedback, so every kernel here mirrors the
scalar code's exact operation order and primitive choice — including the
places where ``math.tan``/``math.asin``/``math.acos`` differ from their
NumPy counterparts in the last ulp (those run as per-lane Python loops), and
the RNG discipline below.

RNG discipline
--------------
Every trial's sensors use the *same* hard-coded seeds (``Imu(seed=1)``,
``Barometer(seed=2)``, ``Gps(seed=3)``, ``Magnetometer(seed=4)``), so while
all lanes draw on every fire the streams are identical across lanes: one
*canonical* generator per sensor is drawn once and broadcast.  The only
events that desynchronize a lane's stream are GPS denial (the scalar sensor
raises *before* drawing) and a frozen barometer (returns stale without
drawing).  On the first partially-masked fire the ensemble lazily
materializes per-lane generators by replaying each lane's exact draw
pattern from its seed, then draws per lane from that point on.

Defection
---------
A lane that hits an unvectorizable path (an injected SLAM position fix, a
velocity target, or an explicit :meth:`LaneSim.defect`) detaches from the
ensemble into a freshly materialized scalar :class:`FlightSimulator` and
continues bit-for-bit: every array row, schedule deadline, PID register,
counter, and RNG state transfers exactly.  The lane facade the autopilot
holds simply switches backends, so fault-injector restore closures that
captured facade components (or the mixer's ``motor_health`` row view) keep
working across the switch.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.control.cascade import ControlRates, TargetMode
from repro.physics import constants
from repro.physics.environment import Wind
from repro.physics.rigid_body import QuadcopterState, euler_from_quaternion
from repro.sim.simulator import DroneModel, FlightSimulator, SimSample

__all__ = [
    "EnsembleFlightSimulator",
    "LaneSim",
    "clear_ensemble_scratch",
    "hover_gust_monte_carlo",
]

STATE_SIZE = 9

#: Shared scratch/constant pool keyed by ``(name, key)`` — measurement
#: matrices, identity blocks, dt-keyed jacobians.  These are written once
#: and never mutated; :func:`clear_ensemble_scratch` drops them (the
#: ``repro.clear_all_caches`` fan-out hook).
_SCRATCH: Dict[Tuple, np.ndarray] = {}


def clear_ensemble_scratch() -> None:
    """Drop the ensemble's shared constant/scratch pool."""
    _SCRATCH.clear()


def _scratch(name: str, key: Tuple, build) -> np.ndarray:
    entry = _SCRATCH.get((name, key))
    if entry is None:
        entry = build()
        _SCRATCH[(name, key)] = entry
    return entry


# -- batched math kernels ----------------------------------------------------
#
# Each helper mirrors one scalar routine bitwise.  ``np.linalg.norm`` is NOT
# bit-identical to an explicit sqrt-of-dot on this BLAS, but the matmul
# dot-trick below is — it reuses the same fused reduction the scalar norm
# performs.


def _rows_norm(v: np.ndarray) -> np.ndarray:
    """Per-row Euclidean norm, bit-identical to ``np.linalg.norm(row)``."""
    return np.sqrt(np.matmul(v[:, None, :], v[:, :, None])[:, 0, 0])


def _quat_to_rotation_rows(q: np.ndarray) -> np.ndarray:
    """(N,4) quaternions -> (N,3,3) rotations; mirrors quaternion_to_rotation."""
    w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    n = q.shape[0]
    out = np.empty((n, 3, 3))
    out[:, 0, 0] = 1 - 2 * (y * y + z * z)
    out[:, 0, 1] = 2 * (x * y - w * z)
    out[:, 0, 2] = 2 * (x * z + w * y)
    out[:, 1, 0] = 2 * (x * y + w * z)
    out[:, 1, 1] = 1 - 2 * (x * x + z * z)
    out[:, 1, 2] = 2 * (y * z - w * x)
    out[:, 2, 0] = 2 * (x * z - w * y)
    out[:, 2, 1] = 2 * (y * z + w * x)
    out[:, 2, 2] = 1 - 2 * (x * x + y * y)
    return out


def _quat_multiply_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise Hamilton product; mirrors quaternion_multiply exactly.

    The full product is kept even when callers pass ``b[:, 0] == 0`` (the
    omega quaternion): the scalar path computes the ``aw*bw`` terms too, and
    signed zeros must match.
    """
    aw, ax, ay, az = a[:, 0], a[:, 1], a[:, 2], a[:, 3]
    bw, bx, by, bz = b[:, 0], b[:, 1], b[:, 2], b[:, 3]
    out = np.empty_like(a)
    out[:, 0] = aw * bw - ax * bx - ay * by - az * bz
    out[:, 1] = aw * bx + ax * bw + ay * bz - az * by
    out[:, 2] = aw * by - ax * bz + ay * bw + az * bx
    out[:, 3] = aw * bz + ax * by - ay * bx + az * bw
    return out


def _quat_from_euler_rows(euler: np.ndarray) -> np.ndarray:
    """(N,3) ZYX Euler -> (N,4) quaternions; mirrors quaternion_from_euler.

    ``np.cos``/``np.sin`` agree bitwise with ``math.cos``/``math.sin`` on
    this platform, so the half-angle chain vectorizes directly.
    """
    cr, sr = np.cos(euler[:, 0] / 2), np.sin(euler[:, 0] / 2)
    cp, sp = np.cos(euler[:, 1] / 2), np.sin(euler[:, 1] / 2)
    cy, sy = np.cos(euler[:, 2] / 2), np.sin(euler[:, 2] / 2)
    out = np.empty((euler.shape[0], 4))
    out[:, 0] = cr * cp * cy + sr * sp * sy
    out[:, 1] = sr * cp * cy - cr * sp * sy
    out[:, 2] = cr * sp * cy + sr * cp * sy
    out[:, 3] = cr * cp * sy - sr * sp * cy
    return out


def _euler_from_quaternion_rows(
    q: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """(N,4) quaternions -> (N,3) ZYX Euler; mirrors euler_from_quaternion.

    Neither ``math.asin``/``np.arcsin`` nor ``math.atan2``/``np.arctan2``
    are bit-identical pairs on this platform, so all three angles run as a
    per-lane Python loop over ``indices`` (the live lanes); other rows are
    left at zero and must be masked off by the caller.  Only the operand
    arithmetic is vectorized.
    """
    w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    out = np.zeros((q.shape[0], 3))
    roll_y = 2 * (w * x + y * z)
    roll_x = 1 - 2 * (x * x + y * y)
    sin_pitch = 2 * (w * y - z * x)
    yaw_y = 2 * (w * z + x * y)
    yaw_x = 1 - 2 * (y * y + z * z)
    for i in indices:
        out[i, 0] = math.atan2(roll_y[i], roll_x[i])
        out[i, 1] = math.asin(max(-1.0, min(1.0, sin_pitch[i])))
        out[i, 2] = math.atan2(yaw_y[i], yaw_x[i])
    return out


def _rotation_from_euler_rows(
    roll: np.ndarray, pitch: np.ndarray, yaw: np.ndarray
) -> np.ndarray:
    """Mirrors estimation._rotation_from_euler row-wise."""
    cr, sr = np.cos(roll), np.sin(roll)
    cp, sp = np.cos(pitch), np.sin(pitch)
    cy, sy = np.cos(yaw), np.sin(yaw)
    out = np.empty((roll.shape[0], 3, 3))
    out[:, 0, 0] = cy * cp
    out[:, 0, 1] = cy * sp * sr - sy * cr
    out[:, 0, 2] = cy * sp * cr + sy * sr
    out[:, 1, 0] = sy * cp
    out[:, 1, 1] = sy * sp * sr + cy * cr
    out[:, 1, 2] = sy * sp * cr - cy * sr
    out[:, 2, 0] = -sp
    out[:, 2, 1] = cp * sr
    out[:, 2, 2] = cp * cr
    return out


def _euler_rates_rows(
    roll: np.ndarray,
    pitch: np.ndarray,
    gyro: np.ndarray,
    indices: np.ndarray,
) -> np.ndarray:
    """Mirrors estimation._euler_rates row-wise.

    ``math.tan`` disagrees with ``np.tan`` in the last ulp, so the tangent
    runs per lane; the ``cos(pitch)`` singularity clamp vectorizes.
    """
    n = roll.shape[0]
    cr, sr = np.cos(roll), np.sin(roll)
    cp = np.cos(pitch)
    tp = np.zeros(n)
    for i in indices:
        tp[i] = math.tan(pitch[i])
    cp = np.where(np.abs(cp) < 1e-6, np.copysign(1e-6, cp), cp)
    transform = np.zeros((n, 3, 3))
    transform[:, 0, 0] = 1.0
    transform[:, 0, 1] = sr * tp
    transform[:, 0, 2] = cr * tp
    transform[:, 1, 1] = cr
    transform[:, 1, 2] = -sr
    transform[:, 2, 1] = sr / cp
    transform[:, 2, 2] = cr / cp
    return np.matmul(transform, gyro[:, :, None])[:, :, 0]


def _wrap_rows(angle: np.ndarray) -> np.ndarray:
    """Mirrors estimation._wrap_angle elementwise."""
    return (angle + math.pi) % (2.0 * math.pi) - math.pi


class _Readings:
    """Which sensors fired this tick, batch-wide (the SensorReadings mirror).

    Fire times are shared (every lane runs the same schedule), so the fired
    flags are plain bools; values and availability are per-lane arrays.
    """

    __slots__ = (
        "imu_fired",
        "accel",
        "gyro",
        "baro_fired",
        "baro",
        "gps_fired",
        "gps_fix",
        "gps_has_fix",
        "mag_fired",
        "mag",
    )

    def __init__(self) -> None:
        self.imu_fired = False
        self.accel: Optional[np.ndarray] = None
        self.gyro: Optional[np.ndarray] = None
        self.baro_fired = False
        self.baro: Optional[np.ndarray] = None
        self.gps_fired = False
        self.gps_fix: Optional[np.ndarray] = None
        self.gps_has_fix: Optional[np.ndarray] = None
        self.mag_fired = False
        self.mag: Optional[np.ndarray] = None


class EnsembleFlightSimulator:
    """N independent closed-loop flights stepped in lockstep.

    All lanes share one airframe model, physics rate, and EKF setting (a
    campaign driver groups trials by ``use_ekf`` before building
    ensembles).  Per-lane divergence — injected faults, failsafe ladders,
    deaths — is handled by masking; a lane that needs a scalar-only feature
    defects via its :class:`LaneSim` facade.

    ``winds`` (optional) gives every lane its own seeded
    :class:`~repro.physics.environment.Wind`; all winds must share mean /
    gust / correlation parameters (only the seed may differ), which is what
    the gust Monte Carlo needs.
    """

    def __init__(
        self,
        model: DroneModel,
        n_lanes: int,
        physics_rate_hz: float = 500.0,
        use_ekf: bool = False,
        winds: Optional[Sequence[Wind]] = None,
        record_rate_hz: float = 50.0,
        rates=None,
    ):
        if n_lanes <= 0:
            raise ValueError(f"need at least one lane, got {n_lanes}")
        # The template is the single source of every derived constant — the
        # mixer inverse, inertia, power denominators — so the ensemble can
        # never drift from what FlightSimulator.__init__ computes.
        template = FlightSimulator(
            model,
            physics_rate_hz=physics_rate_hz,
            use_ekf=use_ekf,
            record_rate_hz=record_rate_hz,
        )
        if rates is not None:
            template.controller.rates = rates
        self._template = template
        self.model = model
        self.n_lanes = n_lanes
        self.physics_rate_hz = physics_rate_hz
        self.use_ekf = use_ekf
        self.time_s = 0.0
        self._record_period_s = template._record_period_s
        self._next_record_s = 0.0

        n = n_lanes
        # -- rigid body --------------------------------------------------------
        self._pos = np.zeros((n, 3))
        self._vel = np.zeros((n, 3))
        self._quat = np.zeros((n, 4))
        self._quat[:, 0] = 1.0
        self._omega = np.zeros((n, 3))
        body = template.body
        self._mass = body.mass_kg
        self._inertia = np.asarray(body.inertia_kg_m2, dtype=float)
        self._arm_x = body.arm_length_m * np.cos(
            np.deg2rad([45.0, 225.0, 135.0, 315.0])
        )
        self._arm_y = body.arm_length_m * np.sin(
            np.deg2rad([45.0, 225.0, 135.0, 315.0])
        )
        self._spin = np.array([1.0, 1.0, -1.0, -1.0])
        self._torque_ratio = 0.016
        self._gravity_row = np.array(
            [0.0, 0.0, -self._mass * constants.GRAVITY_M_S2]
        )
        self._air_density = body.environment.air_density
        self._cda = body.drag_coefficient_area

        # -- wind (optional, per-lane seeds) ----------------------------------
        self._winds = list(winds) if winds is not None else None
        if self._winds is not None:
            if len(self._winds) != n:
                raise ValueError(
                    f"need one wind per lane: {len(self._winds)} != {n}"
                )
            first = self._winds[0]
            for wind in self._winds:
                if (
                    tuple(wind.mean_m_s) != tuple(first.mean_m_s)
                    or wind.gust_speed_m_s != first.gust_speed_m_s
                    or wind.correlation_time_s != first.correlation_time_s
                ):
                    raise ValueError(
                        "ensemble winds must share mean/gust/correlation "
                        "(only seeds may differ)"
                    )
            self._wind_mean = np.asarray(first.mean_m_s, dtype=float)
            self._wind_gust = first.gust_speed_m_s
            self._wind_corr = first.correlation_time_s
            self._wind_states = np.zeros((n, 3))
            self._wind_gens = [
                np.random.default_rng(wind.seed) for wind in self._winds
            ]
            self._wind_block: Optional[np.ndarray] = None
            self._wind_block_pos = 0
            if self._wind_gust > 0:
                tick = 1.0 / physics_rate_hz
                self._wind_alpha = math.exp(-tick / self._wind_corr)
                self._wind_noise_scale = self._wind_gust * math.sqrt(
                    1.0 - self._wind_alpha * self._wind_alpha
                )

        # -- EKF ---------------------------------------------------------------
        self._ekf_state = np.zeros((n, STATE_SIZE))
        self._ekf_cov = np.broadcast_to(
            np.eye(STATE_SIZE) * 0.1, (n, STATE_SIZE, STATE_SIZE)
        ).copy()
        self._ekf_flops = np.zeros(n, dtype=np.int64)
        self._ekf_predictions = np.zeros(n, dtype=np.int64)
        self._ekf_corrections = np.zeros(n, dtype=np.int64)
        self.ekf_resets = np.zeros(n, dtype=np.int64)
        ekf = template.ekf
        self._ekf_accel_noise = ekf.accel_noise
        self._ekf_gyro_noise = ekf.gyro_noise
        self._ekf_gps_noise = ekf.gps_noise_m
        self._ekf_baro_noise = ekf.baro_noise_m
        self._ekf_mag_noise = ekf.mag_noise_rad

        # -- battery -----------------------------------------------------------
        battery = template.battery
        self._cells = battery.cells
        self._capacity_mah = battery.capacity_mah
        self._c_rating = battery.c_rating
        self._max_cont_a = battery.max_continuous_current_a
        self._usable_mah = battery.usable_mah
        self._resistance_base = (
            battery.internal_resistance_ohm_per_cell * battery.cells
        )
        self._used_mah = np.zeros(n)
        self._fault_res = np.zeros(n)
        self.depleted = np.zeros(n, dtype=bool)
        self._last_current = np.zeros(n)
        self._voltage_denom = (
            battery.cells * constants.LIPO_CELL_NOMINAL_V * 1.135
        )

        # -- power chain -------------------------------------------------------
        self._hover_eff = template._hover_eff
        self._induced_denom = template._induced_power_denom
        self._compute_power_w = model.compute_power_w
        self._sensors_power_w = model.sensors_power_w
        self._max_thrust = model.max_thrust_per_motor_n

        # -- controller --------------------------------------------------------
        controller = template.controller
        self._rates = controller.rates
        self._target_pos = np.zeros((n, 3))
        self._target_yaw = np.zeros(n)
        self._att_target = np.zeros((n, 3))
        self._collective = np.full(n, self._mass * constants.GRAVITY_M_S2)
        self._torque_cmd = np.zeros((n, 3))
        self._ctl_time = 0.0
        self._next_position_update = 0.0
        self._next_attitude_update = 0.0
        self._position_level_updates = 0
        pc = controller.position_controller
        self._pos_kp = pc.kp
        self._max_vel = pc.max_velocity_m_s
        self._pos_updates = 0
        vc = pc.velocity
        self._vel_kp, self._vel_ki, self._vel_kd = vc.kp, vc.ki, vc.kd
        self._max_accel = vc.max_acceleration_m_s2
        self._vel_integ = np.zeros((n, 3))
        self._vel_last = np.zeros((n, 3))
        self._vel_has_last = False
        self._vel_updates = 0
        self._vel_pid_updates = 0
        ac = controller.attitude_controller
        self._angle_kp = ac.angle_kp
        self._rate_kp, self._rate_ki, self._rate_kd = (
            ac.rate_kp,
            ac.rate_ki,
            ac.rate_kd,
        )
        self._max_rate = ac.max_rate_rad_s
        self._rate_integ = np.zeros((n, 3))
        self._rate_last = np.zeros((n, 3))
        self._rate_has_last = False
        self._att_updates = 0
        self._rate_pid_updates = 0
        tc = controller.thrust_controller
        self._motor_tc = tc.motor_time_constant_s
        self._lag = np.zeros((n, 4))
        self._thrust_updates = 0
        self._mixer_inverse = tc.mixer._inverse
        self.motor_health = np.ones((n, 4))
        self._mixes = np.zeros(n, dtype=np.int64)
        self._saturations = np.zeros(n, dtype=np.int64)
        self._max_tilt = math.radians(35.0)
        self._sin_max_tilt = math.sin(self._max_tilt)
        self._cos_max_tilt = math.cos(self._max_tilt)

        # -- sensors -----------------------------------------------------------
        suite = template.sensors
        self._sensor_time = 0.0
        self._due = {"imu": 0.0, "baro": 0.0, "gps": 0.0, "mag": 0.0}
        self._imu_period = suite.imu.period_s
        self._imu_accel_noise = suite.imu.accel_noise_m_s2
        self._imu_gyro_noise = suite.imu.gyro_noise_rad_s
        self._imu_seed = suite.imu.seed
        self._imu_samples = np.zeros(n, dtype=np.int64)
        self._imu_last_vel = np.zeros((n, 3))
        self._imu_has_last = False
        self._accel_bias = np.zeros((n, 3))
        self._gyro_bias = np.zeros((n, 3))
        self._accel_bias_obj: List[object] = [(0.0, 0.0, 0.0)] * n
        self._gyro_bias_obj: List[object] = [(0.0, 0.0, 0.0)] * n
        self._gravity_col = np.array([0.0, 0.0, constants.GRAVITY_M_S2])
        self._baro_period = suite.barometer.period_s
        self._baro_noise = suite.barometer.noise_m
        self._baro_bias = suite.barometer.bias_m
        self._baro_seed = suite.barometer.seed
        self._baro_samples = np.zeros(n, dtype=np.int64)
        self._baro_draws = np.zeros(n, dtype=np.int64)
        self._baro_last_alt = np.zeros(n)
        self.baro_frozen = np.zeros(n, dtype=bool)
        self._gps_period = suite.gps.period_s
        self._gps_hnoise = suite.gps.horizontal_noise_m
        self._gps_vnoise = suite.gps.vertical_noise_m
        self._gps_seed = suite.gps.seed
        self._gps_samples = np.zeros(n, dtype=np.int64)
        self.gps_available = np.ones(n, dtype=bool)
        self._last_gps_fix = np.zeros(n)
        self._mag_period = suite.magnetometer.period_s
        self._mag_noise = suite.magnetometer.noise_rad
        self._mag_hard_iron = suite.magnetometer.hard_iron_bias_rad
        self._mag_seed = suite.magnetometer.seed
        self._mag_samples = np.zeros(n, dtype=np.int64)
        # Canonical generators: one per sensor, valid while every live lane
        # draws on every fire.  ``*_gens`` materialize lazily on desync.
        self._imu_gen = np.random.default_rng(self._imu_seed)
        self._baro_gen: Optional[np.random.Generator] = np.random.default_rng(
            self._baro_seed
        )
        self._gps_gen: Optional[np.random.Generator] = np.random.default_rng(
            self._gps_seed
        )
        self._mag_gen = np.random.default_rng(self._mag_seed)
        self._baro_lane_gens: Optional[List] = None
        self._gps_lane_gens: Optional[List] = None

        # -- lane bookkeeping --------------------------------------------------
        #: attached & not frozen: lanes the collective step advances.
        self.live = np.ones(n, dtype=bool)
        #: still backed by the ensemble arrays (False once defected).
        self.attached = np.ones(n, dtype=bool)
        self._uniform = True
        #: Sentinel all-true mask: commits called with *this exact array*
        #: take the unmasked fast path.  Partial masks (EKF ok-sets, baro
        #: draw masks) are always fresh arrays and always go masked.
        self._full = np.ones(n, dtype=bool)
        self._sample_rows: List[List[SimSample]] = [[] for _ in range(n)]
        self._lanes: List[Optional["LaneSim"]] = [None] * n

    # -- masked commit helpers ---------------------------------------------------

    def _commit(self, dst: np.ndarray, src: np.ndarray, mask: np.ndarray) -> None:
        """Write ``src`` into ``dst`` on masked rows, in place.

        In-place (``np.copyto``) so the row views held by lane facades and
        fault-injector closures stay valid; dead and defected lanes' rows
        are never touched.
        """
        if mask is self._full:
            np.copyto(dst, src)
        elif dst.ndim == 1:
            np.copyto(dst, src, where=mask)
        elif dst.ndim == 2:
            np.copyto(dst, src, where=mask[:, None])
        else:
            np.copyto(dst, src, where=mask[:, None, None])

    def _refresh_uniform(self) -> None:
        self._uniform = bool(self.live.all())

    def freeze_lane(self, index: int) -> None:
        """Stop advancing a lane (its trial ended); state stays readable."""
        self.live[index] = False
        self._refresh_uniform()

    # -- sensors -----------------------------------------------------------------

    def _sample_imu(self, live: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        period = self._imu_period
        if not self._imu_has_last:
            accel_world = np.zeros((self.n_lanes, 3))
        else:
            accel_world = (self._vel - self._imu_last_vel) / period
        self._commit(self._imu_last_vel, self._vel, live)
        self._imu_has_last = True
        rotation = _quat_to_rotation_rows(self._quat)
        specific_force = accel_world + self._gravity_col
        accel_body = np.matmul(
            rotation.transpose(0, 2, 1), specific_force[:, :, None]
        )[:, :, 0]
        gyro_body = self._omega.copy()
        # Every lane's scalar IMU shares seed 1 and draws on every fire, so
        # one canonical stream serves all lanes; the IMU can never desync.
        accel_noise = self._imu_gen.normal(0.0, self._imu_accel_noise, 3)
        gyro_noise = self._imu_gen.normal(0.0, self._imu_gyro_noise, 3)
        accel_body += self._accel_bias + accel_noise
        gyro_body += self._gyro_bias + gyro_noise
        self._imu_samples[live] += 1
        return accel_body, gyro_body

    def _materialize_baro_gens(self, live: np.ndarray) -> None:
        """First frozen-vs-drawing split: replay each live lane's stream."""
        gens: List = [None] * self.n_lanes
        for i in np.flatnonzero(live):
            gen = np.random.default_rng(self._baro_seed)
            for _ in range(int(self._baro_draws[i])):
                gen.normal(0.0, self._baro_noise)
            gens[i] = gen
        self._baro_lane_gens = gens
        self._baro_gen = None

    def _sample_baro(self, live: np.ndarray) -> np.ndarray:
        self._baro_samples[live] += 1
        draw = live & ~self.baro_frozen
        n_draw = int(np.count_nonzero(draw))
        if self._baro_lane_gens is None and 0 < n_draw < int(
            np.count_nonzero(live)
        ):
            self._materialize_baro_gens(live)
        if self._baro_lane_gens is None:
            if n_draw:
                assert self._baro_gen is not None
                noise = float(self._baro_gen.normal(0.0, self._baro_noise))
                new_alt = (self._pos[:, 2] + self._baro_bias) + noise
                self._commit(self._baro_last_alt, new_alt, draw)
                self._baro_draws[draw] += 1
        else:
            for i in np.flatnonzero(draw):
                gen = self._baro_lane_gens[i]
                noise = float(gen.normal(0.0, self._baro_noise))
                self._baro_last_alt[i] = (
                    float(self._pos[i, 2]) + self._baro_bias
                ) + noise
                self._baro_draws[i] += 1
        # A frozen barometer still reports (stale) altitude — the scalar
        # sensor returns _last_altitude_m either way.
        return self._baro_last_alt

    def _materialize_gps_gens(self, live: np.ndarray) -> None:
        gens: List = [None] * self.n_lanes
        for i in np.flatnonzero(live):
            gen = np.random.default_rng(self._gps_seed)
            for _ in range(int(self._gps_samples[i])):
                gen.normal(0.0, self._gps_hnoise)
                gen.normal(0.0, self._gps_hnoise)
                gen.normal(0.0, self._gps_vnoise)
            gens[i] = gen
        self._gps_lane_gens = gens
        self._gps_gen = None

    def _sample_gps(
        self, live: np.ndarray, fix: np.ndarray
    ) -> Optional[np.ndarray]:
        n_fix = int(np.count_nonzero(fix))
        if self._gps_lane_gens is None and 0 < n_fix < int(
            np.count_nonzero(live)
        ):
            self._materialize_gps_gens(live)
        if n_fix == 0:
            return None
        if self._gps_lane_gens is None:
            assert self._gps_gen is not None
            gen = self._gps_gen
            noise = np.array(
                [
                    gen.normal(0.0, self._gps_hnoise),
                    gen.normal(0.0, self._gps_hnoise),
                    gen.normal(0.0, self._gps_vnoise),
                ]
            )
            positions = self._pos + noise
        else:
            positions = np.zeros((self.n_lanes, 3))
            for i in np.flatnonzero(fix):
                gen = self._gps_lane_gens[i]
                noise = np.array(
                    [
                        gen.normal(0.0, self._gps_hnoise),
                        gen.normal(0.0, self._gps_hnoise),
                        gen.normal(0.0, self._gps_vnoise),
                    ]
                )
                positions[i] = self._pos[i] + noise
        self._gps_samples[fix] += 1
        return positions

    def _sample_mag(self, live: np.ndarray) -> np.ndarray:
        q = self._quat
        w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
        # Only yaw is observable.  np.arctan2 is NOT bit-identical to
        # math.atan2, so the angle itself runs per lane (10 Hz — cheap).
        yaw_y = 2 * (w * z + x * y)
        yaw_x = 1 - 2 * (y * y + z * z)
        yaw = np.zeros(self.n_lanes)
        for i in np.flatnonzero(live):
            yaw[i] = math.atan2(yaw_y[i], yaw_x[i])
        noise = float(self._mag_gen.normal(0.0, self._mag_noise))
        measured = (yaw + self._mag_hard_iron) + noise
        self._mag_samples[live] += 1
        return (measured + math.pi) % (2.0 * math.pi) - math.pi

    def _poll_sensors(self, dt: float, live: np.ndarray) -> _Readings:
        self._sensor_time += dt
        now = self._sensor_time
        readings = _Readings()
        if now + 1e-12 >= self._due["imu"]:
            self._due["imu"] = max(self._due["imu"] + self._imu_period, now)
            readings.imu_fired = True
            readings.accel, readings.gyro = self._sample_imu(live)
        if now + 1e-12 >= self._due["baro"]:
            self._due["baro"] = max(self._due["baro"] + self._baro_period, now)
            readings.baro_fired = True
            readings.baro = self._sample_baro(live)
        if now + 1e-12 >= self._due["gps"]:
            self._due["gps"] = max(self._due["gps"] + self._gps_period, now)
            fix = live & self.gps_available
            readings.gps_fired = True
            readings.gps_has_fix = fix
            readings.gps_fix = self._sample_gps(live, fix)
            self._last_gps_fix[fix] = now
        if now + 1e-12 >= self._due["mag"]:
            self._due["mag"] = max(self._due["mag"] + self._mag_period, now)
            readings.mag_fired = True
            readings.mag = self._sample_mag(live)
        return readings

    # -- EKF ---------------------------------------------------------------------

    def _ekf_predict(
        self,
        accel: np.ndarray,
        gyro: np.ndarray,
        ok: np.ndarray,
        failed: np.ndarray,
        idx: np.ndarray,
    ) -> None:
        dt = self._imu_period
        state = self._ekf_state
        roll, pitch, yaw = state[:, 6], state[:, 7], state[:, 8]
        rotation = _rotation_from_euler_rows(roll, pitch, yaw)
        accel_world = np.matmul(rotation, accel[:, :, None])[:, :, 0]
        accel_world[:, 2] -= constants.GRAVITY_M_S2

        new_state = state.copy()
        new_state[:, 0:3] += state[:, 3:6] * dt + 0.5 * accel_world * dt * dt
        new_state[:, 3:6] += accel_world * dt
        new_state[:, 6:9] += _euler_rates_rows(roll, pitch, gyro, idx) * dt
        new_state[:, 8] = _wrap_rows(new_state[:, 8])

        def build_jacobian() -> np.ndarray:
            jacobian = np.eye(STATE_SIZE)
            jacobian[0:3, 3:6] = np.eye(3) * dt
            return jacobian

        def build_process() -> np.ndarray:
            process = np.zeros((STATE_SIZE, STATE_SIZE))
            process[3:6, 3:6] = np.eye(3) * (self._ekf_accel_noise * dt) ** 2
            process[6:9, 6:9] = np.eye(3) * (self._ekf_gyro_noise * dt) ** 2
            process[0:3, 0:3] = (
                np.eye(3) * (0.5 * self._ekf_accel_noise * dt * dt) ** 2
            )
            return process

        jacobian = _scratch("ekf_jacobian", (dt,), build_jacobian)
        process = _scratch(
            "ekf_process",
            (dt, self._ekf_accel_noise, self._ekf_gyro_noise),
            build_process,
        )
        new_cov = (
            np.matmul(np.matmul(jacobian, self._ekf_cov), jacobian.T) + process
        )
        # The scalar EKF commits state and covariance before the finite
        # check (the raise happens after mutation); failed lanes are fully
        # reset at end of tick, so committing them here is equivalent.
        self._commit(state, new_state, ok)
        self._commit(self._ekf_cov, new_cov, ok)
        bad = ok & ~np.all(np.isfinite(new_state), axis=1)
        failed |= bad
        ok &= ~bad
        self._ekf_flops[ok] += 2 * STATE_SIZE**3 + 60
        self._ekf_predictions[ok] += 1

    def _ekf_correct(
        self,
        measurement: np.ndarray,
        h: np.ndarray,
        noise: np.ndarray,
        mask: np.ndarray,
        ok: np.ndarray,
        failed: np.ndarray,
    ) -> None:
        state = self._ekf_state
        cov = self._ekf_cov
        m = h.shape[0]
        innovation = measurement - np.matmul(h, state[:, :, None])[:, :, 0]
        s = np.matmul(np.matmul(h, cov), h.T) + noise
        # Identity-fill lanes outside the mask so batched inv cannot choke
        # on dead/garbage rows (their results are discarded anyway).
        eye_m = _scratch("eye", (m,), lambda: np.eye(m))
        s = np.where(mask[:, None, None], s, eye_m)
        gain = np.matmul(np.matmul(cov, h.T), np.linalg.inv(s))
        new_state = state + np.matmul(gain, innovation[:, :, None])[:, :, 0]
        new_state[:, 8] = _wrap_rows(new_state[:, 8])
        identity = _scratch("eye", (STATE_SIZE,), lambda: np.eye(STATE_SIZE))
        new_cov = np.matmul(identity - np.matmul(gain, h), cov)
        self._commit(state, new_state, mask)
        self._commit(cov, new_cov, mask)
        bad = mask & ~np.all(np.isfinite(new_state), axis=1)
        failed |= bad
        ok &= ~bad
        good = mask & ~bad
        self._ekf_flops[good] += 2 * STATE_SIZE**2 * m + STATE_SIZE**3 + m**3 + 40
        self._ekf_corrections[good] += 1

    def _ekf_tick(self, readings: _Readings, live: np.ndarray) -> None:
        checkpoint = self._ekf_state.copy()
        ok = live.copy()
        failed = np.zeros(self.n_lanes, dtype=bool)
        if readings.imu_fired:
            assert readings.accel is not None and readings.gyro is not None
            idx = np.flatnonzero(ok)
            self._ekf_predict(readings.accel, readings.gyro, ok, failed, idx)
        if readings.gps_fired and readings.gps_fix is not None:
            assert readings.gps_has_fix is not None
            mask = ok & readings.gps_has_fix
            if mask.any():
                h = _scratch("ekf_h_gps", (), self._build_h_gps)
                noise = _scratch(
                    "ekf_noise_gps",
                    (self._ekf_gps_noise,),
                    lambda: np.eye(2) * self._ekf_gps_noise**2,
                )
                self._ekf_correct(
                    readings.gps_fix[:, 0:2], h, noise, mask, ok, failed
                )
        if readings.baro_fired:
            assert readings.baro is not None
            if ok.any():
                h = _scratch("ekf_h_baro", (), self._build_h_baro)
                noise = _scratch(
                    "ekf_noise_baro",
                    (self._ekf_baro_noise,),
                    lambda: np.array([[self._ekf_baro_noise**2]]),
                )
                self._ekf_correct(
                    readings.baro[:, None], h, noise, ok.copy(), ok, failed
                )
        if readings.mag_fired:
            assert readings.mag is not None
            if ok.any():
                h = _scratch("ekf_h_mag", (), self._build_h_mag)
                noise = _scratch(
                    "ekf_noise_mag",
                    (self._ekf_mag_noise,),
                    lambda: np.array([[self._ekf_mag_noise**2]]),
                )
                wrapped = (
                    _wrap_rows(readings.mag - self._ekf_state[:, 8])
                    + self._ekf_state[:, 8]
                )
                self._ekf_correct(
                    wrapped[:, None], h, noise, ok.copy(), ok, failed
                )
        if failed.any():
            # Mirror of InsEkf.reset(checkpoint): pre-tick state, fresh
            # covariance, and zeroed op counters.
            np.copyto(self._ekf_state, checkpoint, where=failed[:, None])
            np.copyto(
                self._ekf_cov,
                np.eye(STATE_SIZE) * 0.1,
                where=failed[:, None, None],
            )
            self._ekf_flops[failed] = 0
            self._ekf_predictions[failed] = 0
            self._ekf_corrections[failed] = 0
            self.ekf_resets[failed] += 1

    @staticmethod
    def _build_h_gps() -> np.ndarray:
        h = np.zeros((2, STATE_SIZE))
        h[0, 0] = 1.0
        h[1, 1] = 1.0
        return h

    @staticmethod
    def _build_h_baro() -> np.ndarray:
        h = np.zeros((1, STATE_SIZE))
        h[0, 2] = 1.0
        return h

    @staticmethod
    def _build_h_mag() -> np.ndarray:
        h = np.zeros((1, STATE_SIZE))
        h[0, 8] = 1.0
        return h

    # -- controller cascade -------------------------------------------------------

    @staticmethod
    def _clamp_rows(values: np.ndarray, limit: float) -> np.ndarray:
        """Mirror of ``max(-limit, min(limit, x))`` with Python's NaN order."""
        step = np.where(values < limit, values, limit)
        return np.where(step > -limit, step, -limit)

    def _accel_to_attitude(
        self, accel: np.ndarray, live: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched acceleration_to_attitude_thrust over the live mask."""
        force_world = self._mass * (accel + self._gravity_col)
        thrust = _rows_norm(force_world)
        tiny = thrust < 1e-9
        z_body = force_world / thrust[:, None]
        cos_tilt = self._clamp_rows(z_body[:, 2], 1.0)
        tilt = np.zeros(self.n_lanes)
        for i in np.flatnonzero(live & ~tiny):
            tilt[i] = math.acos(cos_tilt[i])
        over = (tilt > self._max_tilt) & live & ~tiny
        if over.any():
            horizontal = z_body[:, 0:2]
            horizontal_norm = _rows_norm(horizontal)
            fix = over & (horizontal_norm > 1e-9)
            if fix.any():
                scale = self._sin_max_tilt / horizontal_norm
                projected = np.empty_like(z_body)
                projected[:, 0] = horizontal[:, 0] * scale
                projected[:, 1] = horizontal[:, 1] * scale
                projected[:, 2] = self._cos_max_tilt
                z_body = np.where(fix[:, None], projected, z_body)
        yaw = self._target_yaw
        x_c = np.zeros((self.n_lanes, 3))
        x_c[:, 0] = np.cos(yaw)
        x_c[:, 1] = np.sin(yaw)
        y_body = np.cross(z_body, x_c)
        y_norm = _rows_norm(y_body)
        if bool(np.any((y_norm < 1e-9) & live & ~tiny)):
            raise ValueError("degenerate attitude: thrust axis parallel to heading")
        y_body = y_body / y_norm[:, None]
        x_body = np.cross(y_body, z_body)
        pitch = np.zeros(self.n_lanes)
        roll = np.zeros(self.n_lanes)
        x_body_z = x_body[:, 2]
        y_body_z = y_body[:, 2]
        z_body_z = z_body[:, 2]
        for i in np.flatnonzero(live & ~tiny):
            pitch[i] = -math.asin(max(-1.0, min(1.0, x_body_z[i])))
            roll[i] = math.atan2(y_body_z[i], z_body_z[i])
        attitude = np.zeros((self.n_lanes, 3))
        attitude[:, 0] = np.where(tiny, 0.0, roll)
        attitude[:, 1] = np.where(tiny, 0.0, pitch)
        attitude[:, 2] = yaw
        collective = np.where(tiny, 0.0, thrust)
        return attitude, collective

    def _mix(self, live: np.ndarray) -> np.ndarray:
        """Batched MotorMixer.mix with attitude-priority desaturation."""
        inverse = self._mixer_inverse
        wrench = np.empty((self.n_lanes, 4))
        wrench[:, 0] = self._collective
        wrench[:, 1:4] = self._torque_cmd
        ceilings = self._max_thrust * self.motor_health
        thrusts = np.matmul(inverse, wrench[:, :, None])[:, :, 0]
        need = np.any(thrusts < 0.0, axis=1) | np.any(thrusts > ceilings, axis=1)
        if need.any():
            wrench_no_yaw = wrench.copy()
            wrench_no_yaw[:, 3] *= 0.25
            wrench_no_yaw[:, 0] = 0.0
            torque_part = np.matmul(inverse, wrench_no_yaw[:, :, None])[:, :, 0]
            collective_part = inverse[:, 0] * self._collective[:, None]
            scale = np.ones(self.n_lanes)
            for rotor in range(4):
                candidate = (
                    ceilings[:, rotor] - torque_part[:, rotor]
                ) / collective_part[:, rotor]
                usable = collective_part[:, rotor] > 1e-12
                take = usable & (candidate < scale)
                scale = np.where(take, candidate, scale)
            scale = np.clip(scale, 0.5, 1.0)
            desat = torque_part + scale[:, None] * collective_part
            thrusts = np.where(need[:, None], desat, thrusts)
        self._mixes[live] += 1
        saturated = np.any(thrusts > ceilings + 1e-9, axis=1)
        self._saturations[live & saturated] += 1
        return np.clip(thrusts, 0.0, ceilings)

    def _controller_tick(
        self,
        est_pos: np.ndarray,
        est_vel: np.ndarray,
        est_quat: np.ndarray,
        est_omega: np.ndarray,
        dt: float,
        live: np.ndarray,
        idx: np.ndarray,
    ) -> np.ndarray:
        self._ctl_time += dt

        if self._ctl_time + 1e-12 >= self._next_position_update:
            position_dt = 1.0 / self._rates.position_hz
            self._next_position_update = max(
                self._next_position_update + position_dt, self._ctl_time
            )
            self._position_level_updates += 1
            # PositionController.update: P loop with velocity norm clamp.
            velocity_setpoint = self._pos_kp * (self._target_pos - est_pos)
            norm = _rows_norm(velocity_setpoint)
            over = norm > self._max_vel
            if over.any():
                scaled = velocity_setpoint * (self._max_vel / norm)[:, None]
                velocity_setpoint = np.where(
                    over[:, None], scaled, velocity_setpoint
                )
            self._pos_updates += 1
            # VelocityController.update: three axis PIDs + accel norm clamp.
            error = velocity_setpoint - est_vel
            integral = self._clamp_rows(self._vel_integ + error * position_dt, 3.0)
            if self._vel_has_last:
                derivative = -(est_vel - self._vel_last) / position_dt
            else:
                derivative = np.zeros((self.n_lanes, 3))
            self._commit(self._vel_integ, integral, live)
            self._commit(self._vel_last, est_vel, live)
            self._vel_has_last = True
            self._vel_pid_updates += 1
            accel = (
                self._vel_kp * error + self._vel_ki * integral
            ) + self._vel_kd * derivative
            self._vel_updates += 1
            norm = _rows_norm(accel)
            over = norm > self._max_accel
            if over.any():
                scaled = accel * (self._max_accel / norm)[:, None]
                accel = np.where(over[:, None], scaled, accel)
            attitude, collective = self._accel_to_attitude(accel, live)
            self._commit(self._att_target, attitude, live)
            self._commit(self._collective, collective, live)

        if self._ctl_time + 1e-12 >= self._next_attitude_update:
            attitude_dt = 1.0 / self._rates.attitude_hz
            self._next_attitude_update = max(
                self._next_attitude_update + attitude_dt, self._ctl_time
            )
            est_euler = _euler_from_quaternion_rows(est_quat, idx)
            angle_error = self._att_target - est_euler
            angle_error[:, 2] = (
                angle_error[:, 2] + np.pi
            ) % (2.0 * np.pi) - np.pi
            rate_setpoint = np.clip(
                self._angle_kp * angle_error, -self._max_rate, self._max_rate
            )
            error = rate_setpoint - est_omega
            integral = self._clamp_rows(
                self._rate_integ + error * attitude_dt, 2.0
            )
            if self._rate_has_last:
                derivative = -(est_omega - self._rate_last) / attitude_dt
            else:
                derivative = np.zeros((self.n_lanes, 3))
            self._commit(self._rate_integ, integral, live)
            self._commit(self._rate_last, est_omega, live)
            self._rate_has_last = True
            self._rate_pid_updates += 1
            normalized = (
                self._rate_kp * error + self._rate_ki * integral
            ) + self._rate_kd * derivative
            torque = np.matmul(self._inertia, normalized[:, :, None])[:, :, 0]
            self._commit(self._torque_cmd, torque, live)
            self._att_updates += 1

        # ThrustController.update: mixer allocation + first-order motor lag.
        commanded = self._mix(live)
        alpha = dt / (self._motor_tc + dt)
        lagged = self._lag + alpha * (commanded - self._lag)
        self._commit(self._lag, lagged, live)
        self._thrust_updates += 1
        return lagged

    # -- rigid body ---------------------------------------------------------------

    def _wind_normals(self) -> np.ndarray:
        """Next per-lane OU noise draw, from the pregenerated block when one
        is active (run_for) or drawn lane-by-lane otherwise (direct step)."""
        block = self._wind_block
        if block is not None and self._wind_block_pos < block.shape[1]:
            normals = block[:, self._wind_block_pos, :]
            self._wind_block_pos += 1
            return normals
        normals = np.zeros((self.n_lanes, 3))
        for i in np.flatnonzero(self.live):
            normals[i] = self._wind_gens[i].standard_normal(3)
        return normals

    def _body_step(
        self, thrusts: np.ndarray, dt: float, live: np.ndarray
    ) -> None:
        total_thrust = np.sum(thrusts, axis=1)
        torque = np.empty((self.n_lanes, 3))
        torque[:, 0] = np.sum(self._arm_y * thrusts, axis=1)
        torque[:, 1] = -np.sum(self._arm_x * thrusts, axis=1)
        torque[:, 2] = np.sum(self._spin * thrusts, axis=1) * self._torque_ratio

        rotation = _quat_to_rotation_rows(self._quat)
        thrust_col = np.zeros((self.n_lanes, 3, 1))
        thrust_col[:, 2, 0] = total_thrust
        thrust_world = np.matmul(rotation, thrust_col)[:, :, 0]

        airspeed = self._vel.copy()
        if self._winds is not None:
            if self._wind_gust > 0:
                new_gust = (
                    self._wind_alpha * self._wind_states
                    + self._wind_noise_scale * self._wind_normals()
                )
                self._commit(self._wind_states, new_gust, live)
            airspeed -= self._wind_mean + self._wind_states

        speed = _rows_norm(airspeed)
        magnitude = (
            0.5 * self._air_density * self._cda * speed * speed
        )
        drag = (-magnitude[:, None] * airspeed) / speed[:, None]
        drag = np.where((speed == 0.0)[:, None], 0.0, drag)

        acceleration = (thrust_world + self._gravity_row + drag) / self._mass
        new_vel = self._vel + acceleration * dt
        new_pos = self._pos + new_vel * dt
        below = new_pos[:, 2] < 0.0
        if below.any():
            new_pos[:, 2] = np.where(below, 0.0, new_pos[:, 2])
            new_vel[:, 2] = np.where(
                below & (new_vel[:, 2] < 0.0), 0.0, new_vel[:, 2]
            )

        inertia_omega = np.matmul(self._inertia, self._omega[:, :, None])[:, :, 0]
        rhs = torque - np.cross(self._omega, inertia_omega)
        omega_dot = np.linalg.solve(self._inertia, rhs[:, :, None])[:, :, 0]
        new_omega = self._omega + omega_dot * dt

        omega_quat = np.zeros((self.n_lanes, 4))
        omega_quat[:, 1:4] = new_omega
        q_dot = 0.5 * _quat_multiply_rows(self._quat, omega_quat)
        new_quat = self._quat + q_dot * dt
        new_quat = new_quat / _rows_norm(new_quat)[:, None]

        self._commit(self._vel, new_vel, live)
        self._commit(self._pos, new_pos, live)
        self._commit(self._omega, new_omega, live)
        self._commit(self._quat, new_quat, live)

    # -- battery / power ----------------------------------------------------------

    def _soc_rows(self) -> np.ndarray:
        soc = 1.0 - self._used_mah / self._capacity_mah
        return np.where(soc > 0.0, soc, 0.0)

    def _ocv_rows(self) -> np.ndarray:
        soc = self._soc_rows()
        full = 4.05 + (soc - 0.9) / 0.1 * (constants.LIPO_CELL_FULL_V - 4.05)
        mid = 3.70 + (soc - 0.15) / 0.75 * (4.05 - 3.70)
        low = constants.LIPO_CELL_EMPTY_V + soc / 0.15 * (
            3.70 - constants.LIPO_CELL_EMPTY_V
        )
        cell_v = np.where(soc > 0.9, full, np.where(soc > 0.15, mid, low))
        return cell_v * self._cells

    def _terminal_voltage(self, load_current_a) -> np.ndarray:
        resistance = self._resistance_base + self._fault_res
        sagged = self._ocv_rows() - load_current_a * resistance
        return np.where(sagged > 0.0, sagged, 0.0)

    # -- the lockstep tick --------------------------------------------------------

    def step(self) -> None:
        """Advance every live lane one physics tick, in lockstep.

        Mirrors FlightSimulator.step op for op: sense -> estimate -> control
        -> actuate -> meter.  Masked lanes (dead/defected) produce garbage in
        intermediate arrays that the masked commits discard; errstate
        suppresses the resulting spurious warnings (the scalar path never
        evaluates those lanes at all).
        """
        live = self._full if self._uniform else self.live
        if not self._uniform and not bool(live.any()):
            raise RuntimeError("no live lanes to step")
        dt = 1.0 / self.physics_rate_hz
        self.time_s += dt
        idx = np.flatnonzero(live)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            readings = self._poll_sensors(dt, live)
            if self.use_ekf:
                self._ekf_tick(readings, live)
                est_pos = self._ekf_state[:, 0:3]
                est_vel = self._ekf_state[:, 3:6]
                est_quat = _quat_from_euler_rows(self._ekf_state[:, 6:9])
            else:
                est_pos, est_vel, est_quat = self._pos, self._vel, self._quat
            thrusts = self._controller_tick(
                est_pos, est_vel, est_quat, self._omega, dt, live, idx
            )
            voltage_ratio = (
                self._terminal_voltage(self._last_current) / self._voltage_denom
            )
            capped = np.where(voltage_ratio < 1.0, voltage_ratio, 1.0)
            ceiling = self._max_thrust * np.float_power(capped, 2)
            thrusts = np.minimum(thrusts, ceiling[:, None])
            self._body_step(thrusts, dt, live)

            clipped = np.maximum(thrusts, 0.0)
            ideal_w = clipped * np.sqrt(clipped) / self._induced_denom
            propulsion = np.sum(ideal_w / (self._hover_eff * 1.0), axis=1)
            power = (
                propulsion + self._compute_power_w
            ) + self._sensors_power_w
            floor = self._terminal_voltage(0.0)
            current = power / np.where(floor > 1.0, floor, 1.0)
            self._commit(self._last_current, current, live)
            draw = np.where(
                current < self._max_cont_a, current, self._max_cont_a
            )
            drawn_mah = draw * dt / 3.6
            remaining = self._usable_mah - self._used_mah
            remaining = np.where(remaining > 0.0, remaining, 0.0)
            deplete = drawn_mah > remaining + 1e-9
            new_used = self._used_mah + drawn_mah
            if deplete.any():
                self._commit(self._used_mah, new_used, live & ~deplete)
                self.depleted |= live & deplete
            else:
                self._commit(self._used_mah, new_used, live)

        if self.time_s + 1e-12 >= self._next_record_s:
            self._next_record_s = self.time_s + self._record_period_s
            voltage = self._terminal_voltage(current)
            soc = self._soc_rows()
            for i in idx:
                self._sample_rows[i].append(
                    SimSample(
                        time_s=self.time_s,
                        position_m=self._pos[i].copy(),
                        velocity_m_s=self._vel[i].copy(),
                        euler_rad=euler_from_quaternion(self._quat[i]),
                        motor_thrusts_n=thrusts[i].copy(),
                        electrical_power_w=float(power[i]),
                        battery_voltage_v=float(voltage[i]),
                        battery_soc=float(soc[i]),
                    )
                )

    def run_for(self, duration_s: float) -> None:
        """Step all live lanes for ``duration_s`` simulated seconds."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        steps = int(round(duration_s * self.physics_rate_hz))
        gusty = self._winds is not None and self._wind_gust > 0
        remaining = steps
        while remaining > 0:
            chunk = min(remaining, 2048)
            if gusty:
                # Per-lane OU noise, drawn as one block per lane: a
                # standard_normal(3k) block equals k sequential
                # standard_normal(3) draws, values and generator state.
                block = np.zeros((self.n_lanes, chunk, 3))
                for i in np.flatnonzero(self.live):
                    block[i] = self._wind_gens[i].standard_normal(
                        3 * chunk
                    ).reshape(chunk, 3)
                self._wind_block = block
                self._wind_block_pos = 0
            for _ in range(chunk):
                self.step()
            remaining -= chunk

    # -- lane access --------------------------------------------------------------

    def set_lane_target(self, index: int, position_m, yaw_rad: float = 0.0) -> None:
        """Set one lane's position target (mirrors ``FlightSimulator.goto``)."""
        self._check_lane(index)
        self._target_pos[index] = np.asarray(position_m, dtype=float)
        self._target_yaw[index] = yaw_rad

    def lane(self, index: int) -> "LaneSim":
        """Persistent scalar-simulator facade over one lane.

        The same object is returned for repeated calls, so closures that
        capture it (fault-injector restores, autopilot references) stay
        valid across a mid-flight defection to the scalar backend.
        """
        self._check_lane(index)
        facade = self._lanes[index]
        if facade is None:
            facade = LaneSim(self, index)
            self._lanes[index] = facade
        return facade

    def lane_samples(self, index: int) -> List[SimSample]:
        """Telemetry recorded for one lane (shared with its scalar backend)."""
        self._check_lane(index)
        return self._sample_rows[index]

    def _check_lane(self, index: int) -> None:
        if not 0 <= index < self.n_lanes:
            raise IndexError(
                f"lane index {index} out of range [0, {self.n_lanes})"
            )

    # -- defection ----------------------------------------------------------------

    def materialize_lane(self, index: int) -> FlightSimulator:
        """Detach one lane into a scalar :class:`FlightSimulator`, bit-for-bit.

        Every array row, schedule deadline, PID register, counter, and RNG
        state transfers exactly, so the scalar simulator continues the
        trajectory the ensemble would have produced.  The lane's ensemble
        slots go dead (masked out of every subsequent kernel); its
        ``motor_health`` row and samples list are *shared* with the scalar
        backend so facade references keep working.
        """
        self._check_lane(index)
        if not self.attached[index]:
            raise RuntimeError(f"lane {index} already defected")
        if not self.live[index]:
            raise RuntimeError(f"lane {index} is dead")

        wind: Optional[Wind] = None
        if self._winds is not None:
            spec = self._winds[index]
            wind = Wind(
                mean_m_s=spec.mean_m_s,
                gust_speed_m_s=spec.gust_speed_m_s,
                correlation_time_s=spec.correlation_time_s,
                seed=spec.seed,
            )
            wind._state = self._wind_states[index].copy()
            wind._rng = self._wind_gens[index]

        sim = FlightSimulator(
            self.model,
            physics_rate_hz=self.physics_rate_hz,
            use_ekf=self.use_ekf,
            wind=wind,
        )
        sim._record_period_s = self._record_period_s
        sim._next_record_s = self._next_record_s
        sim.time_s = self.time_s
        sim._last_current_a = float(self._last_current[index])
        sim.depleted = bool(self.depleted[index])
        sim.ekf_resets = int(self.ekf_resets[index])
        # Shared list: the scalar backend appends to the same telemetry the
        # ensemble recorded, so lane(i).samples is seamless across the switch.
        sim.samples = self._sample_rows[index]

        state = sim.body.state
        state.position_m = self._pos[index].copy()
        state.velocity_m_s = self._vel[index].copy()
        state.quaternion = self._quat[index].copy()
        state.angular_velocity_rad_s = self._omega[index].copy()

        sim.battery.used_mah = float(self._used_mah[index])
        sim.battery.fault_resistance_ohm = float(self._fault_res[index])

        sim.ekf.state = self._ekf_state[index].copy()
        sim.ekf.covariance = self._ekf_cov[index].copy()
        sim.ekf.flops = int(self._ekf_flops[index])
        sim.ekf.predictions = int(self._ekf_predictions[index])
        sim.ekf.corrections = int(self._ekf_corrections[index])

        ctl = sim.controller
        ctl.rates = self._rates
        ctl.targets.mode = TargetMode.POSITION
        ctl.targets.position_m = self._target_pos[index].copy()
        ctl.targets.yaw_rad = float(self._target_yaw[index])
        ctl._attitude_target = self._att_target[index].copy()
        ctl._collective_thrust_n = float(self._collective[index])
        ctl._time_s = self._ctl_time
        ctl._next_position_update = self._next_position_update
        ctl._next_attitude_update = self._next_attitude_update
        ctl._position_level_updates = self._position_level_updates
        if self._att_updates > 0:
            # Mirrors the scalar hasattr(_torque_command) lazy-init: the
            # attribute only exists once the attitude level has run.
            ctl._torque_command = self._torque_cmd[index].copy()
        ctl.position_controller.updates = self._pos_updates
        velocity = ctl.position_controller.velocity
        velocity.updates = self._vel_updates
        for axis in range(3):
            pid = velocity._pids[axis]
            pid._integral = float(self._vel_integ[index, axis])
            pid._last_measurement = (
                float(self._vel_last[index, axis]) if self._vel_has_last else None
            )
            pid.updates = self._vel_pid_updates
        attitude = ctl.attitude_controller
        attitude.updates = self._att_updates
        for axis in range(3):
            pid = attitude._rate_pids[axis]
            pid._integral = float(self._rate_integ[index, axis])
            pid._last_measurement = (
                float(self._rate_last[index, axis]) if self._rate_has_last else None
            )
            pid.updates = self._rate_pid_updates
        thrust = ctl.thrust_controller
        thrust.updates = self._thrust_updates
        thrust._thrusts_n = self._lag[index].copy()
        mixer = thrust.mixer
        mixer.mixes = int(self._mixes[index])
        mixer.saturations = int(self._saturations[index])
        # Row VIEW, not a copy: injector restore closures write through the
        # facade's motor_health array in place, and the facade always hands
        # out this row.
        mixer.motor_health = self.motor_health[index]

        suite = sim.sensors
        suite._time_s = self._sensor_time
        suite._due = dict(self._due)
        suite._last_gps_fix_s = float(self._last_gps_fix[index])
        imu = suite.imu
        imu.samples = int(self._imu_samples[index])
        imu.accel_bias_m_s2 = self._accel_bias_obj[index]
        imu.gyro_bias_rad_s = self._gyro_bias_obj[index]
        imu._last_velocity = (
            self._imu_last_vel[index].copy() if self._imu_has_last else None
        )
        imu._rng = _clone_generator(self._imu_seed, self._imu_gen)
        baro = suite.barometer
        baro.samples = int(self._baro_samples[index])
        baro.frozen = bool(self.baro_frozen[index])
        baro._last_altitude_m = float(self._baro_last_alt[index])
        if self._baro_lane_gens is not None:
            baro._rng = self._baro_lane_gens[index]
            self._baro_lane_gens[index] = None
        else:
            assert self._baro_gen is not None
            baro._rng = _clone_generator(self._baro_seed, self._baro_gen)
        gps = suite.gps
        gps.samples = int(self._gps_samples[index])
        gps.available = bool(self.gps_available[index])
        if self._gps_lane_gens is not None:
            gps._rng = self._gps_lane_gens[index]
            self._gps_lane_gens[index] = None
        else:
            assert self._gps_gen is not None
            gps._rng = _clone_generator(self._gps_seed, self._gps_gen)
        mag = suite.magnetometer
        mag.samples = int(self._mag_samples[index])
        mag._rng = _clone_generator(self._mag_seed, self._mag_gen)

        self.live[index] = False
        self.attached[index] = False
        self._refresh_uniform()
        facade = self._lanes[index]
        if facade is not None:
            facade._scalar = sim
        return sim


def _clone_generator(seed: int, source: np.random.Generator) -> np.random.Generator:
    """Fresh Generator carrying the exact bit-generator state of ``source``."""
    gen = np.random.default_rng(seed)
    gen.bit_generator.state = source.bit_generator.state
    return gen


# ---------------------------------------------------------------------------
# Lane facades: the scalar FlightSimulator surface over one ensemble lane
# ---------------------------------------------------------------------------


class LaneGps:
    """Facade over one lane's GPS availability flag."""

    def __init__(self, lane: "LaneSim"):
        self._lane = lane

    @property
    def available(self) -> bool:
        lane = self._lane
        if lane._scalar is not None:
            return lane._scalar.sensors.gps.available
        return bool(lane._ens.gps_available[lane._index])

    @available.setter
    def available(self, value: bool) -> None:
        lane = self._lane
        if lane._scalar is not None:
            lane._scalar.sensors.gps.available = value
        else:
            lane._ens.gps_available[lane._index] = bool(value)


class LaneImu:
    """Facade over one lane's IMU bias tuples.

    The injector framework reads the current tuples, swaps in biased ones,
    and restores the originals — the facade keeps the tuple *objects* so
    that round-trip is exact, while mirroring the values into the batch
    bias arrays the vector kernels read.
    """

    def __init__(self, lane: "LaneSim"):
        self._lane = lane

    @property
    def accel_bias_m_s2(self) -> Tuple[float, float, float]:
        lane = self._lane
        if lane._scalar is not None:
            return lane._scalar.sensors.imu.accel_bias_m_s2
        return lane._ens._accel_bias_obj[lane._index]

    @accel_bias_m_s2.setter
    def accel_bias_m_s2(self, value) -> None:
        lane = self._lane
        if lane._scalar is not None:
            lane._scalar.sensors.imu.accel_bias_m_s2 = value
        else:
            lane._ens._accel_bias_obj[lane._index] = value
            lane._ens._accel_bias[lane._index] = np.asarray(value)

    @property
    def gyro_bias_rad_s(self) -> Tuple[float, float, float]:
        lane = self._lane
        if lane._scalar is not None:
            return lane._scalar.sensors.imu.gyro_bias_rad_s
        return lane._ens._gyro_bias_obj[lane._index]

    @gyro_bias_rad_s.setter
    def gyro_bias_rad_s(self, value) -> None:
        lane = self._lane
        if lane._scalar is not None:
            lane._scalar.sensors.imu.gyro_bias_rad_s = value
        else:
            lane._ens._gyro_bias_obj[lane._index] = value
            lane._ens._gyro_bias[lane._index] = np.asarray(value)


class LaneBarometer:
    """Facade over one lane's barometer freeze flag."""

    def __init__(self, lane: "LaneSim"):
        self._lane = lane

    @property
    def frozen(self) -> bool:
        lane = self._lane
        if lane._scalar is not None:
            return lane._scalar.sensors.barometer.frozen
        return bool(lane._ens.baro_frozen[lane._index])

    @frozen.setter
    def frozen(self, value: bool) -> None:
        lane = self._lane
        if lane._scalar is not None:
            lane._scalar.sensors.barometer.frozen = value
        else:
            lane._ens.baro_frozen[lane._index] = bool(value)


class LaneSensors:
    """Facade over one lane's sensor suite."""

    def __init__(self, lane: "LaneSim"):
        self._lane = lane
        self.gps = LaneGps(lane)
        self.imu = LaneImu(lane)
        self.barometer = LaneBarometer(lane)

    def gps_fix_age_s(self) -> float:
        lane = self._lane
        if lane._scalar is not None:
            return lane._scalar.sensors.gps_fix_age_s()
        ens = lane._ens
        return float(ens._sensor_time - ens._last_gps_fix[lane._index])


class LaneBattery:
    """Facade over one lane's battery state and fault hooks."""

    def __init__(self, lane: "LaneSim"):
        self._lane = lane

    @property
    def capacity_mah(self) -> float:
        lane = self._lane
        if lane._scalar is not None:
            return lane._scalar.battery.capacity_mah
        return lane._ens._capacity_mah

    @property
    def state_of_charge(self) -> float:
        lane = self._lane
        if lane._scalar is not None:
            return lane._scalar.battery.state_of_charge
        ens = lane._ens
        used = float(ens._used_mah[lane._index])
        return max(0.0, 1.0 - used / ens._capacity_mah)

    @property
    def fault_resistance_ohm(self) -> float:
        lane = self._lane
        if lane._scalar is not None:
            return lane._scalar.battery.fault_resistance_ohm
        return float(lane._ens._fault_res[lane._index])

    @fault_resistance_ohm.setter
    def fault_resistance_ohm(self, value: float) -> None:
        lane = self._lane
        if lane._scalar is not None:
            lane._scalar.battery.fault_resistance_ohm = value
        else:
            lane._ens._fault_res[lane._index] = value

    def inject_drain(self, drain_mah: float) -> None:
        lane = self._lane
        if lane._scalar is not None:
            lane._scalar.battery.inject_drain(drain_mah)
            return
        if drain_mah < 0:
            raise ValueError(f"drain cannot be negative, got {drain_mah}")
        ens = lane._ens
        used = float(ens._used_mah[lane._index])
        ens._used_mah[lane._index] = min(ens._capacity_mah, used + drain_mah)


class LaneMixer:
    """Facade over one lane's mixer statistics and motor-health row.

    ``motor_health`` is always the lane's row *view* into the ensemble
    array — the same memory the scalar backend's mixer is handed at
    defection — so injector restores that write it in place work across
    the backend switch.
    """

    def __init__(self, lane: "LaneSim"):
        self._lane = lane

    @property
    def motor_health(self) -> np.ndarray:
        lane = self._lane
        return lane._ens.motor_health[lane._index]

    @property
    def mixes(self) -> int:
        lane = self._lane
        if lane._scalar is not None:
            return lane._scalar.controller.thrust_controller.mixer.mixes
        return int(lane._ens._mixes[lane._index])

    @property
    def saturations(self) -> int:
        lane = self._lane
        if lane._scalar is not None:
            return lane._scalar.controller.thrust_controller.mixer.saturations
        return int(lane._ens._saturations[lane._index])

    def set_motor_health(self, motor_index: int, factor: float) -> None:
        if not 0 <= motor_index < 4:
            raise ValueError(f"motor index must be 0-3, got {motor_index}")
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"health factor must be in [0, 1], got {factor}")
        self.motor_health[motor_index] = factor


class LaneThrustController:
    """Facade over one lane's thrust level (exposes the mixer)."""

    def __init__(self, lane: "LaneSim"):
        self.mixer = LaneMixer(lane)


class LaneController:
    """Facade over one lane's controller cascade."""

    def __init__(self, lane: "LaneSim"):
        self.thrust_controller = LaneThrustController(lane)


class LaneBody:
    """Facade over one lane's rigid-body state."""

    def __init__(self, lane: "LaneSim"):
        self._lane = lane
        ens = lane._ens
        self._view = QuadcopterState(
            position_m=ens._pos[lane._index],
            velocity_m_s=ens._vel[lane._index],
            quaternion=ens._quat[lane._index],
            angular_velocity_rad_s=ens._omega[lane._index],
        )

    @property
    def state(self) -> QuadcopterState:
        scalar = self._lane._scalar
        if scalar is not None:
            return scalar.body.state
        return self._view


class LaneSim:
    """One ensemble lane presented through the ``FlightSimulator`` surface.

    The autopilot, fault injectors, and safety monitor all drive a trial
    through this object.  While the lane is attached, reads and writes go
    to the ensemble's arrays; after :meth:`defect` they delegate to the
    materialized scalar simulator — the references callers hold (including
    closures capturing sub-facades) never change.
    """

    def __init__(self, ensemble: EnsembleFlightSimulator, index: int):
        self._ens = ensemble
        self._index = index
        self._scalar: Optional[FlightSimulator] = None
        self.sensors = LaneSensors(self)
        self.battery = LaneBattery(self)
        self.controller = LaneController(self)
        self.body = LaneBody(self)

    # -- identity ------------------------------------------------------------

    @property
    def model(self) -> DroneModel:
        return self._ens.model

    @property
    def physics_rate_hz(self) -> float:
        return self._ens.physics_rate_hz

    @property
    def use_ekf(self) -> bool:
        return self._ens.use_ekf

    @property
    def attached(self) -> bool:
        """True while this lane still steps inside the ensemble."""
        return self._scalar is None

    # -- state ---------------------------------------------------------------

    @property
    def time_s(self) -> float:
        if self._scalar is not None:
            return self._scalar.time_s
        return self._ens.time_s

    @property
    def depleted(self) -> bool:
        if self._scalar is not None:
            return self._scalar.depleted
        return bool(self._ens.depleted[self._index])

    @property
    def ekf_resets(self) -> int:
        if self._scalar is not None:
            return self._scalar.ekf_resets
        return int(self._ens.ekf_resets[self._index])

    @property
    def samples(self) -> List[SimSample]:
        if self._scalar is not None:
            return self._scalar.samples
        return self._ens._sample_rows[self._index]

    # -- commands ------------------------------------------------------------

    def goto(self, position_m, yaw_rad: float = 0.0) -> None:
        if self._scalar is not None:
            self._scalar.goto(position_m, yaw_rad)
        else:
            self._ens.set_lane_target(self._index, position_m, yaw_rad)

    def set_velocity(self, velocity_m_s, yaw_rad: float = 0.0) -> None:
        """Velocity targets are per-lane scalar control flow: defect first."""
        self.defect().set_velocity(velocity_m_s, yaw_rad)

    def inject_position_fix(self, position_m, noise_m: float = 0.05) -> None:
        """External (e.g. SLAM) fixes are unvectorizable: defect first."""
        self.defect().inject_position_fix(position_m, noise_m)

    def run_for(self, duration_s: float) -> None:
        if self._scalar is None:
            raise RuntimeError(
                "lane is attached to the ensemble; step it via "
                "EnsembleFlightSimulator.run_for (or defect() first)"
            )
        self._scalar.run_for(duration_s)

    def defect(self) -> FlightSimulator:
        """Detach from the ensemble into a scalar simulator (idempotent)."""
        if self._scalar is None:
            self._scalar = self._ens.materialize_lane(self._index)
        return self._scalar

    # -- derived metrics ------------------------------------------------------

    def average_power_w(self, since_s: float = 0.0) -> float:
        """Mean recorded electrical power after ``since_s``."""
        powers = [s.electrical_power_w for s in self.samples if s.time_s >= since_s]
        if not powers:
            raise ValueError("no samples recorded in the requested window")
        return float(np.mean(powers))

    def hover_position_error_m(self, target_m, since_s: float) -> float:
        """RMS position error against ``target_m`` after ``since_s``."""
        target = np.asarray(target_m, dtype=float)
        errors = [
            float(np.linalg.norm(s.position_m - target))
            for s in self.samples
            if s.time_s >= since_s
        ]
        if not errors:
            raise ValueError("no samples recorded in the requested window")
        return float(np.sqrt(np.mean(np.square(errors))))


# ---------------------------------------------------------------------------
# Batch Monte Carlo studies
# ---------------------------------------------------------------------------


def hover_gust_monte_carlo(
    model: DroneModel,
    seeds: Sequence[int],
    gust_speed_m_s: float,
    duration_s: float = 10.0,
    physics_rate_hz: float = 500.0,
    target_m=(0.0, 0.0, 5.0),
    mean_m_s: Tuple[float, float, float] = (0.0, 0.0, 0.0),
    correlation_time_s: float = 1.5,
    rates: Optional[ControlRates] = None,
) -> List[float]:
    """RMS hover error per wind seed, one ensemble lane per seed.

    Bit-for-bit equal to running a scalar :class:`FlightSimulator` once per
    seed with ``Wind(gust_speed_m_s=..., seed=s)`` — the vectorized form of
    the gust-rejection study's Monte Carlo loop.
    """
    winds = [
        Wind(
            mean_m_s=mean_m_s,
            gust_speed_m_s=gust_speed_m_s,
            correlation_time_s=correlation_time_s,
            seed=int(seed),
        )
        for seed in seeds
    ]
    if not winds:
        raise ValueError("need at least one wind seed")
    ensemble = EnsembleFlightSimulator(
        model,
        n_lanes=len(winds),
        physics_rate_hz=physics_rate_hz,
        winds=winds,
        rates=rates,
    )
    target = np.asarray(target_m, dtype=float)
    for index in range(len(winds)):
        ensemble.set_lane_target(index, target)
    ensemble.run_for(duration_s)
    return [
        ensemble.lane(index).hover_position_error_m(
            target, since_s=duration_s / 2.0
        )
        for index in range(len(winds))
    ]
