"""Physical constants and canonical drone-domain parameters.

The values here are the single source of truth for the whole library.
Domain constants (LiPo cell voltage, drain limit, flying-load bands,
figure of merit) come straight from the paper's text (Sections 2.1.2,
3.1, 3.2) so that every downstream model shares the paper's assumptions.
"""

from __future__ import annotations

import math

from repro.analysis.markers import hot_path, pure

# --- Universal physics -----------------------------------------------------

GRAVITY_M_S2 = 9.80665
"""Standard gravitational acceleration (m/s^2)."""

AIR_DENSITY_SEA_LEVEL_KG_M3 = 1.225
"""ISA sea-level air density (kg/m^3)."""

AIR_GAS_CONSTANT_J_KG_K = 287.058
"""Specific gas constant of dry air (J/(kg*K))."""

SEA_LEVEL_PRESSURE_PA = 101_325.0
"""ISA sea-level static pressure (Pa)."""

SEA_LEVEL_TEMPERATURE_K = 288.15
"""ISA sea-level temperature (K)."""

TEMPERATURE_LAPSE_RATE_K_M = 0.0065
"""ISA tropospheric temperature lapse rate (K/m)."""

# --- LiPo battery (paper Section 2.1.2) -------------------------------------

LIPO_CELL_NOMINAL_V = 3.7
"""Nominal voltage of a single LiPo cell (V); packs are multiples of this."""

LIPO_CELL_FULL_V = 4.2
"""Fully charged LiPo cell voltage (V)."""

LIPO_CELL_EMPTY_V = 3.3
"""Safe cut-off voltage of a LiPo cell under load (V)."""

LIPO_DRAIN_LIMIT = 0.85
"""Fraction of capacity safely usable in flight (paper: 'only 85%')."""

# --- Operating points (paper Section 3.2) ------------------------------------

HOVER_LOAD_FRACTION = (0.20, 0.30)
"""Low-load hover band: fraction of max motor current draw while hovering."""

MANEUVER_LOAD_FRACTION = (0.60, 0.70)
"""Maneuvering band: fraction of max motor current draw while maneuvering."""

DEFAULT_HOVER_LOAD = 0.25
"""Midpoint of the hover band, used when a single number is required."""

DEFAULT_MANEUVER_LOAD = 0.65
"""Midpoint of the maneuver band, used when a single number is required."""

MIN_FLYABLE_TWR = 2.0
"""Minimum thrust-to-weight ratio the paper uses for efficient designs."""

MAX_AEROBATIC_TWR = 7.0
"""Upper end of common TWR ratios (Table 3)."""

# --- Propulsion efficiency chain ---------------------------------------------

PROPELLER_FIGURE_OF_MERIT = 0.62
"""Hover figure of merit of small-UAV propellers (ideal power / real power)."""

MOTOR_ESC_EFFICIENCY = 0.80
"""Combined electrical efficiency of a BLDC motor plus its ESC near hover."""

HOVER_OVERALL_EFFICIENCY = PROPELLER_FIGURE_OF_MERIT * MOTOR_ESC_EFFICIENCY
"""Thrust-chain efficiency near hover (~0.50); validated against the average
power implied by commercial drones' released flight times (e.g. DJI
Phantom 4: model 141 W vs 144 W implied)."""

FULL_THROTTLE_OVERALL_EFFICIENCY = 0.354
"""Thrust-chain efficiency at maximum throttle.  Motors and propellers are
markedly less efficient at their limit; this value makes momentum-theory
hover power land at 25% of the maximum current draw — the midpoint of the
paper's 20-30% hovering FlyingLoad band, i.e. the two paper assumptions
(TWR = 2 and hover load 20-30%) become mutually consistent."""

ESC_SWITCHING_FREQUENCY_HZ = (60e3, 600e3)
"""ESC MOSFET switching-frequency range from the paper (Hz)."""

# --- Control timing (paper Table 2) ------------------------------------------

THRUST_LOOP_HZ = 1000.0
"""Low-level thrust controller update frequency (Hz)."""

ATTITUDE_LOOP_HZ = 200.0
"""Mid-level attitude controller update frequency (Hz)."""

POSITION_LOOP_HZ = 40.0
"""High-level position/trajectory controller update frequency (Hz)."""

THRUST_RESPONSE_S = 0.050
"""Thrust controller response time (s)."""

ATTITUDE_RESPONSE_S = 0.100
"""Attitude controller response time (s)."""

POSITION_RESPONSE_S = 1.0
"""Position controller response time (s)."""

INNER_LOOP_HZ_RANGE = (50.0, 500.0)
"""Physically useful inner-loop update frequency range (Hz)."""

# --- Misc airframe heuristics -------------------------------------------------

INCH_TO_M = 0.0254
WIRING_WEIGHT_FRACTION = 0.03
"""Wires/connectors weight as a fraction of electromechanical weight."""


@pure
@hot_path
def propeller_disk_area_m2(diameter_inch: float) -> float:
    """Return the actuator-disk area (m^2) of a propeller given its diameter.

    >>> round(propeller_disk_area_m2(10.0), 4)
    0.0507
    """
    if diameter_inch <= 0:
        raise ValueError(f"propeller diameter must be positive, got {diameter_inch}")
    radius_m = diameter_inch * INCH_TO_M / 2.0
    return math.pi * radius_m * radius_m


@pure
@hot_path
def air_density_kg_m3(altitude_m: float = 0.0, temperature_offset_k: float = 0.0) -> float:
    """ISA air density at ``altitude_m`` with an optional temperature offset.

    Supports the environment model (air density changes thrust and hence
    the inner-loop operating point).
    """
    if altitude_m < -500.0 or altitude_m > 11_000.0:
        raise ValueError(f"altitude outside tropospheric model: {altitude_m} m")
    temperature_k = (
        SEA_LEVEL_TEMPERATURE_K
        - TEMPERATURE_LAPSE_RATE_K_M * altitude_m
        + temperature_offset_k
    )
    pressure_pa = SEA_LEVEL_PRESSURE_PA * (
        1.0 - TEMPERATURE_LAPSE_RATE_K_M * altitude_m / SEA_LEVEL_TEMPERATURE_K
    ) ** (GRAVITY_M_S2 / (AIR_GAS_CONSTANT_J_KG_K * TEMPERATURE_LAPSE_RATE_K_M))
    return pressure_pa / (AIR_GAS_CONSTANT_J_KG_K * temperature_k)


@pure
@hot_path
def grams_to_newtons(grams: float) -> float:
    """Convert a thrust/weight expressed in grams-force to newtons."""
    return grams / 1000.0 * GRAVITY_M_S2


@pure
@hot_path
def newtons_to_grams(newtons: float) -> float:
    """Convert a force in newtons to grams-force (the hobby-drone unit)."""
    return newtons / GRAVITY_M_S2 * 1000.0
