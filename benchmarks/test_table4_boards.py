"""Table 4: flight controllers, compute boards, and external sensors."""

import pytest

from repro.components.compute import (
    BoardClass,
    boards_by_class,
    table4_flight_controllers,
)
from repro.components.sensors import table4_external_sensors

from conftest import print_table


def test_table4_census(benchmark):
    boards = benchmark.pedantic(table4_flight_controllers, rounds=10,
                                iterations=1)
    sensors = table4_external_sensors()

    rows = [
        (
            board.board_class.value,
            f"{board.manufacturer} {board.name}",
            f"{board.weight_g:g} g",
            f"{board.power_w:.2f} W",
        )
        for board in boards
    ]
    print_table(
        "Table 4 — flight controllers & computation",
        ("class", "board", "weight", "power"),
        rows,
    )
    rows = [
        (
            sensor.kind.value,
            f"{sensor.manufacturer} {sensor.name}",
            f"{sensor.weight_g:g} g",
            f"{sensor.power_w:g} W" + (" (self-powered)" if sensor.self_powered else ""),
        )
        for sensor in sensors
    ]
    print_table(
        "Table 4 — external sensors",
        ("kind", "sensor", "weight", "power"),
        rows,
    )

    # Census shape: 10 boards split basic/improved; power spans 0.5-20 W.
    assert len(boards) == 10
    assert len(boards_by_class(BoardClass.BASIC)) == 5
    assert len(boards_by_class(BoardClass.IMPROVED)) == 5
    powers = [b.power_w for b in boards]
    assert min(powers) <= 0.75
    assert max(powers) == pytest.approx(20.0)
    # All basic controllers use the STM32F Cortex-M family (paper claim).
    for board in boards_by_class(BoardClass.BASIC):
        assert "STM32F" in board.processor
