"""Electronic speed controller (ESC) catalog models (paper Figure 8a).

ESC weight is strongly correlated with the maximum continuous current the
MOSFET stage can handle.  The paper splits 40 commercial ESCs into two
populations: *long-flight* ESCs (thermally sized for sustained load) and
*short-flight* racing ESCs (lighter, overheat past ~5 minutes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.markers import hot_path, pure
from repro.components.base import Component, LinearFit


class EscClass(enum.Enum):
    """Thermal sizing class of an ESC (paper Figure 8a legend)."""

    LONG_FLIGHT = "long_flight"
    SHORT_FLIGHT = "short_flight"


#: Figure 8a fits: weight of a *set of four* ESCs (g) vs per-ESC max
#: continuous current (A).
FIG8A_WEIGHT_FITS = {
    EscClass.LONG_FLIGHT: LinearFit(slope=4.9678, intercept=-15.757),
    EscClass.SHORT_FLIGHT: LinearFit(slope=1.2269, intercept=11.816),
}

#: ESC switching frequency is ~6 electrical transitions per rotor revolution.
SWITCHING_EVENTS_PER_REV = 6


@dataclass(frozen=True)
class EscSpec(Component):
    """One commercial ESC (weight is for a single unit)."""

    max_continuous_current_a: float = 30.0
    esc_class: EscClass = EscClass.LONG_FLIGHT
    burst_current_a: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_continuous_current_a <= 0:
            raise ValueError(
                f"max continuous current must be positive, "
                f"got {self.max_continuous_current_a}"
            )
        if self.burst_current_a and self.burst_current_a < self.max_continuous_current_a:
            raise ValueError("burst current cannot be below continuous current")

    @property
    def sustains_long_flight(self) -> bool:
        return self.esc_class is EscClass.LONG_FLIGHT

    def switching_frequency_hz(self, rotor_rpm: float) -> float:
        """Commutation frequency at ``rotor_rpm`` (paper: 6 x RPM)."""
        if rotor_rpm < 0:
            raise ValueError(f"RPM must be non-negative, got {rotor_rpm}")
        return SWITCHING_EVENTS_PER_REV * rotor_rpm / 60.0


@pure
@hot_path
def esc_set_weight_g(
    max_continuous_current_a: float,
    esc_class: EscClass = EscClass.LONG_FLIGHT,
) -> float:
    """Weight (g) of the full set of four ESCs, from the Figure 8a fits."""
    if max_continuous_current_a <= 0:
        raise ValueError(
            f"max continuous current must be positive, got {max_continuous_current_a}"
        )
    fit = FIG8A_WEIGHT_FITS[esc_class]
    return max(4.0, fit.predict(max_continuous_current_a))


def esc_unit_weight_g(
    max_continuous_current_a: float,
    esc_class: EscClass = EscClass.LONG_FLIGHT,
) -> float:
    """Weight (g) of a single ESC."""
    return esc_set_weight_g(max_continuous_current_a, esc_class) / 4.0


def make_esc(
    max_continuous_current_a: float,
    esc_class: EscClass = EscClass.LONG_FLIGHT,
    manufacturer: str = "analytic",
    weight_noise_g: float = 0.0,
) -> EscSpec:
    """Construct an ESC whose weight follows the Figure 8a population."""
    weight = esc_unit_weight_g(max_continuous_current_a, esc_class) + weight_noise_g
    return EscSpec(
        name=f"ESC-{int(max_continuous_current_a)}A-{esc_class.value}",
        manufacturer=manufacturer,
        weight_g=max(1.0, weight),
        max_continuous_current_a=max_continuous_current_a,
        esc_class=esc_class,
        burst_current_a=max_continuous_current_a * 1.3,
    )
