#!/usr/bin/env python
"""Quickstart: design a drone, read its tradeoffs, fly it.

Covers the library's three core surfaces in ~40 lines of user code:

1. the design-space engine (Equations 1-7) — describe a configuration,
   get weight closure, power, flight time, and the compute-power share;
2. the Figure 12 wizard — quantify what a compute optimization buys;
3. the closed-loop simulator via the DroneKit-like API — fly the design.

Run:  python examples/quickstart.py
"""

from repro.autopilot.dronekit import connect
from repro.core.design import DroneDesign
from repro.core.wizard import DesignWizard
from repro.sim.simulator import DroneModel


def main() -> None:
    # 1. Design: a 450 mm quad on a 3S 3000 mAh pack with a 5 W companion
    #    computer (RPi-class) running heavy computation.
    design = DroneDesign(
        wheelbase_mm=450.0,
        battery_cells=3,
        battery_capacity_mah=3000.0,
        compute_power_w=5.0,
        compute_weight_g=50.0,
    )
    evaluation = design.evaluate()
    print("== Design evaluation ==")
    print(evaluation.summary())
    print("weight breakdown (g):",
          {k: round(v) for k, v in evaluation.weight.as_dict().items()})

    # 2. Quantify: what would offloading that 5 W workload to a 0.4 W FPGA
    #    buy us?  (The Section 5 showcase, in three lines.)
    wizard = DesignWizard(wheelbase_mm=450.0)
    wizard.add_compute(power_w=5.0, weight_g=50.0)
    wizard.select_battery(3, 3000.0)
    outcome = wizard.quantify_optimization(
        power_saved_w=5.0 - 0.417, weight_delta_g=25.0
    )
    print("\n== FPGA offload outcome ==")
    print(f"gained flight time: {outcome.gained_flight_time_min:+.2f} min "
          f"(new total {outcome.new_flight_time_min:.1f} min)")

    # 3. Fly it: the same configuration in the closed-loop simulator.
    model = DroneModel(
        mass_kg=evaluation.total_weight_g / 1000.0,
        wheelbase_mm=450.0,
        battery_cells=3,
        battery_capacity_mah=3000.0,
        compute_power_w=5.0,
    )
    vehicle = connect(model)
    vehicle.armed = True
    vehicle.simple_takeoff(5.0, wait_s=8.0)
    print("\n== Flight test ==")
    print(f"altitude: {vehicle.location.altitude:.2f} m, "
          f"battery: {vehicle.battery.level:.1%}")
    vehicle.simple_goto(5.0, 5.0, 5.0, wait_s=7.0)
    print(f"reached ({vehicle.location.east:.1f}, {vehicle.location.north:.1f}) "
          f"at {vehicle.location.altitude:.1f} m")
    vehicle.mode = "land"
    vehicle.wait(8.0)
    print(f"landed; final altitude {vehicle.location.altitude:.2f} m")
    vehicle.armed = False
    vehicle.close()


if __name__ == "__main__":
    main()
