"""Environment model: air density, wind, and gusts.

Table 1 of the paper lists the unpredictable effects the inner-loop control
must compensate — wind gusts, local disturbances, atmospheric turbulence.
This module synthesizes those disturbances deterministically (seeded) so the
control-system experiments are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.analysis.markers import hot_path
from repro.physics import constants


@dataclass
class Wind:
    """Steady wind plus a Dryden-like first-order gust process.

    The gust component is an Ornstein-Uhlenbeck process per axis: band-limited
    noise whose intensity scales with ``gust_speed_m_s`` and whose bandwidth
    is ``1 / correlation_time_s``.
    """

    mean_m_s: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    gust_speed_m_s: float = 0.0
    correlation_time_s: float = 1.5
    seed: int = 0
    _state: np.ndarray = field(init=False, repr=False)
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.gust_speed_m_s < 0:
            raise ValueError(f"gust speed must be non-negative, got {self.gust_speed_m_s}")
        if self.correlation_time_s <= 0:
            raise ValueError("gust correlation time must be positive")
        self._state = np.zeros(3)
        if self._rng is None:
            self._rng = np.random.default_rng(self.seed)

    @hot_path
    def step(self, dt: float) -> np.ndarray:
        """Advance the gust process by ``dt`` and return the wind vector (m/s)."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if self.gust_speed_m_s > 0:
            assert self._rng is not None  # seeded in __post_init__
            alpha = math.exp(-dt / self.correlation_time_s)
            noise_scale = self.gust_speed_m_s * math.sqrt(1.0 - alpha * alpha)
            self._state = alpha * self._state + noise_scale * self._rng.standard_normal(3)
        return np.asarray(self.mean_m_s, dtype=float) + self._state

    def reset(self) -> None:
        self._state = np.zeros(3)
        self._rng = np.random.default_rng(self.seed)


@dataclass(frozen=True)
class Environment:
    """Ambient conditions seen by the airframe."""

    altitude_m: float = 0.0
    temperature_offset_k: float = 0.0

    @property
    def air_density(self) -> float:
        return constants.air_density_kg_m3(self.altitude_m, self.temperature_offset_k)

    @hot_path
    def drag_force_n(
        self,
        velocity_m_s: np.ndarray,
        drag_coefficient_area: float,
    ) -> np.ndarray:
        """Quadratic body drag opposing ``velocity_m_s``.

        ``drag_coefficient_area`` is Cd*A in m^2 — a lumped airframe constant.
        """
        if drag_coefficient_area < 0:
            raise ValueError("Cd*A must be non-negative")
        speed = float(np.linalg.norm(velocity_m_s))
        if speed == 0.0:
            return np.zeros(3)
        magnitude = 0.5 * self.air_density * drag_coefficient_area * speed * speed
        return -magnitude * velocity_m_s / speed
