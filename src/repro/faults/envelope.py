"""Crash envelope: the ground-truth limits beyond which the airframe is lost.

PR 1 hard-coded these thresholds inside the scenario runner's
``_crash_reason``; extracting them into a frozen dataclass makes the
envelope a shared, configurable contract consumed by both the canned
scenarios (:mod:`repro.faults.scenarios`) and the chaos campaign's
:class:`repro.chaos.invariants.SafetyMonitor` — one definition of "crashed"
for every robustness harness in the repo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.simulator import FlightSimulator


@dataclass(frozen=True)
class CrashEnvelope:
    """Ground-truth state limits that mean the vehicle has been lost.

    The defaults reproduce PR 1's hand-written checks exactly: 75 degrees of
    tilt is unrecoverable for this controller, -0.3 m is below any plausible
    terrain model, and touching down faster than 3 m/s breaks the airframe.
    """

    #: Combined roll/pitch magnitude treated as loss of control.
    tilt_limit_rad: float = math.radians(75.0)
    #: Altitude below which the vehicle has punched into the ground.
    impact_altitude_m: float = -0.3
    #: Altitude under which a fast descent counts as a landing, not flight.
    touchdown_altitude_m: float = 0.15
    #: Descent speed at touchdown that destroys the airframe.
    hard_landing_speed_m_s: float = 3.0
    #: Altitude above which a dead battery means a falling vehicle.
    depleted_altitude_m: float = 1.0

    def __post_init__(self) -> None:
        if self.tilt_limit_rad <= 0:
            raise ValueError(f"tilt limit must be positive: {self.tilt_limit_rad}")
        if self.hard_landing_speed_m_s <= 0:
            raise ValueError(
                f"hard-landing speed must be positive: {self.hard_landing_speed_m_s}"
            )
        if self.touchdown_altitude_m <= self.impact_altitude_m:
            raise ValueError(
                "touchdown altitude must sit above the impact altitude: "
                f"{self.touchdown_altitude_m} <= {self.impact_altitude_m}"
            )

    def crash_reason(self, sim: "FlightSimulator") -> Optional[str]:
        """Detect loss of vehicle from the simulator's ground-truth state."""
        state = sim.body.state
        altitude_m = float(state.position_m[2])
        tilt_rad = float(np.linalg.norm(state.euler_rad[0:2]))
        if tilt_rad > self.tilt_limit_rad:
            return "loss of control (tilt)"
        if altitude_m < self.impact_altitude_m:
            return "ground impact"
        if (
            altitude_m < self.touchdown_altitude_m
            and float(state.velocity_m_s[2]) < -self.hard_landing_speed_m_s
        ):
            return "hard landing"
        if sim.depleted and altitude_m > self.depleted_altitude_m:
            return "battery depleted in flight"
        return None


#: The shared default envelope every harness flies under unless overridden.
DEFAULT_CRASH_ENVELOPE = CrashEnvelope()
