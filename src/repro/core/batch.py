"""Vectorized design-space evaluation engine (Equations 1-7 as array ops).

The scalar path — :meth:`repro.core.design.DroneDesign.evaluate` — walks one
design point at a time through the Equation 1-7 chain, paying Python call
overhead for every capacity x cell-count x wheelbase grid cell.  This module
lifts the whole chain into NumPy: an entire grid evaluates as a handful of
array operations, with infeasibility expressed as masks instead of
exceptions.

The engine is deliberately *bit-for-bit equal* to the scalar path: every
arithmetic expression below replicates the operand order of the scalar
implementation, so `evaluate_grid` can sit behind the existing sweep API
(:mod:`repro.core.explorer`) without perturbing a single published number.
The scalar path stays in the tree as the oracle; the equivalence is pinned
by ``tests/test_core_batch.py``.

Usage::

    grid = BatchDesignGrid.from_arrays(
        wheelbase_mm=450.0,
        battery_cells=np.repeat([1, 3, 6], 29),
        battery_capacity_mah=np.tile(np.arange(1000.0, 8001.0, 250.0), 3),
    )
    batch = evaluate_grid(grid)
    batch.feasible          # boolean mask over the flattened grid
    batch.evaluations()     # List[Optional[DesignEvaluation]]
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.markers import hot_path, hot_path_safe, memoized_pure, pure
from repro.components.battery import FIG7_WEIGHT_FITS
from repro.components.esc import FIG8A_WEIGHT_FITS, EscClass, esc_set_weight_g
from repro.components.frame import (
    FIG8B_LARGE_FIT,
    FIG8B_SMALL_FIT,
    MAX_WHEELBASE_MM,
    MIN_WHEELBASE_MM,
    SMALL_FRAME_LIMIT_MM,
)
from repro.core.design import DesignEvaluation
from repro.core.equations import (
    MAX_FEASIBLE_C_RATING,
    MAX_FEASIBLE_ESC_CURRENT_A,
    MAX_FEASIBLE_KV,
    WeightBreakdown,
    motor_max_current_a as scalar_motor_max_current_a,
)
from repro.components.propeller import propeller_set_weight_g
from repro.physics import constants
from repro.physics.motor import motor_mass_g_for, required_kv_for
from repro.physics.propeller import (
    max_propeller_inch_for_wheelbase,
    typical_propeller_for,
)

#: Weight-closure controls, matching :func:`repro.core.equations.close_weight`.
_MAX_ITERATIONS = 60
_TOLERANCE_G = 0.01
_DIVERGENCE_LIMIT_G = 50_000.0

#: Once this few lanes are still iterating, the closure loop switches from
#: full-width array dispatch to per-lane scalar arithmetic — below this
#: width a Python iteration is cheaper than ~40 ufunc dispatches.
_SCALAR_TAIL_WIDTH = 16

#: Failure codes for infeasible lanes, in the order the scalar path raises.
FAIL_DIVERGED = 1
FAIL_NOT_CONVERGED = 2
FAIL_KV = 3
FAIL_ESC_CURRENT = 4
FAIL_C_RATING = 5


@dataclass(frozen=True)
class BatchDesignGrid:
    """A flattened grid of design points as parallel arrays.

    Every field is a 1-D float64 (or int64 for cells) array of the same
    length; one index = one design point.  Use :meth:`from_arrays` to build
    one from broadcastable inputs.
    """

    wheelbase_mm: np.ndarray
    battery_cells: np.ndarray
    battery_capacity_mah: np.ndarray
    compute_power_w: np.ndarray
    compute_weight_g: np.ndarray
    sensors_power_w: np.ndarray
    sensors_weight_g: np.ndarray
    payload_g: np.ndarray
    avionics_weight_g: np.ndarray
    twr: np.ndarray
    hover_load: np.ndarray
    maneuver_load: np.ndarray
    esc_class: EscClass = EscClass.LONG_FLIGHT

    @property
    def size(self) -> int:
        return int(self.wheelbase_mm.size)

    @classmethod
    def from_arrays(
        cls,
        wheelbase_mm: object,
        battery_cells: object,
        battery_capacity_mah: object,
        compute_power_w: object = 3.0,
        compute_weight_g: object = 20.0,
        sensors_power_w: object = 0.0,
        sensors_weight_g: object = 0.0,
        payload_g: object = 0.0,
        avionics_weight_g: object = 80.0,
        twr: object = constants.MIN_FLYABLE_TWR,
        hover_load: object = constants.DEFAULT_HOVER_LOAD,
        maneuver_load: object = constants.DEFAULT_MANEUVER_LOAD,
        esc_class: EscClass = EscClass.LONG_FLIGHT,
    ) -> "BatchDesignGrid":
        """Broadcast scalars/arrays to a common flattened grid and validate.

        Validation mirrors ``DroneDesign.__post_init__`` plus the component
        range checks that the scalar path would raise as ``ValueError``
        (as opposed to the physics-driven ``InfeasibleDesignError`` cases,
        which become mask entries).
        """
        arrays = np.broadcast_arrays(
            np.asarray(wheelbase_mm, dtype=float).ravel(),
            np.asarray(battery_cells, dtype=np.int64).ravel(),
            np.asarray(battery_capacity_mah, dtype=float).ravel(),
            np.asarray(compute_power_w, dtype=float).ravel(),
            np.asarray(compute_weight_g, dtype=float).ravel(),
            np.asarray(sensors_power_w, dtype=float).ravel(),
            np.asarray(sensors_weight_g, dtype=float).ravel(),
            np.asarray(payload_g, dtype=float).ravel(),
            np.asarray(avionics_weight_g, dtype=float).ravel(),
            np.asarray(twr, dtype=float).ravel(),
            np.asarray(hover_load, dtype=float).ravel(),
            np.asarray(maneuver_load, dtype=float).ravel(),
        )
        (wb, cells, cap, cp_w, cp_g, sn_w, sn_g, pl_g, av_g, twr_a, hl, ml) = (
            np.ascontiguousarray(a) for a in arrays
        )
        if wb.size == 0:
            raise ValueError("design grid is empty")
        if np.any(wb <= 0):
            raise ValueError("wheelbase must be positive")
        if np.any((wb < MIN_WHEELBASE_MM) | (wb > MAX_WHEELBASE_MM)):
            raise ValueError(
                f"wheelbase outside [{MIN_WHEELBASE_MM}, {MAX_WHEELBASE_MM}] mm"
            )
        supported_cells = sorted(FIG7_WEIGHT_FITS)
        if not np.all(np.isin(cells, supported_cells)):
            raise ValueError(f"unsupported cell count; supported: {supported_cells}")
        if np.any(cap <= 0):
            raise ValueError("battery capacity must be positive")
        if np.any(cp_w < 0) or np.any(sn_w < 0):
            raise ValueError("power figures cannot be negative")
        if np.any(pl_g < 0):
            raise ValueError("payload cannot be negative")
        if np.any(twr_a < 1.0):
            raise ValueError("TWR below 1 cannot fly")
        if np.any((hl <= 0.0) | (hl > 1.0)) or np.any((ml <= 0.0) | (ml > 1.0)):
            raise ValueError("flying load must be in (0, 1]")
        return cls(
            wheelbase_mm=wb,
            battery_cells=cells,
            battery_capacity_mah=cap,
            compute_power_w=cp_w,
            compute_weight_g=cp_g,
            sensors_power_w=sn_w,
            sensors_weight_g=sn_g,
            payload_g=pl_g,
            avionics_weight_g=av_g,
            twr=twr_a,
            hover_load=hl,
            maneuver_load=ml,
            esc_class=esc_class,
        )


@dataclass
class BatchEvaluation:
    """Array-valued output of :func:`evaluate_grid`.

    Feasible lanes carry finite values in every array; infeasible lanes are
    NaN with ``failure_code``/``failure_message`` explaining why, matching
    the scalar path's ``InfeasibleDesignError`` messages character for
    character.
    """

    grid: BatchDesignGrid
    feasible: np.ndarray
    failure_code: np.ndarray
    # -- weight breakdown (Equation 1) ---------------------------------------
    frame_g: np.ndarray
    battery_g: np.ndarray
    motors_g: np.ndarray
    escs_g: np.ndarray
    propellers_g: np.ndarray
    wires_g: np.ndarray
    total_weight_g: np.ndarray
    # -- derived point values (Equations 2-7) --------------------------------
    propeller_inch: np.ndarray
    battery_voltage_v: np.ndarray
    motor_max_current_a: np.ndarray
    motor_kv: np.ndarray
    required_battery_c_rating: np.ndarray
    hover_power_w: np.ndarray
    maneuver_power_w: np.ndarray
    usable_energy_wh: np.ndarray
    flight_time_min: np.ndarray
    maneuver_flight_time_min: np.ndarray
    compute_share_hover: np.ndarray
    compute_share_maneuver: np.ndarray
    gained_flight_time_min: np.ndarray

    @property
    def size(self) -> int:
        return self.grid.size

    @property
    def feasible_count(self) -> int:
        return int(np.count_nonzero(self.feasible))

    def failure_message(self, index: int) -> Optional[str]:
        """The scalar path's ``InfeasibleDesignError`` message for a lane."""
        code = int(self.failure_code[index])
        if code == 0:
            return None
        wheelbase = float(self.grid.wheelbase_mm[index])
        cells = int(self.grid.battery_cells[index])
        capacity = float(self.grid.battery_capacity_mah[index])
        if code == FAIL_DIVERGED:
            return (
                f"weight closure diverges for wheelbase={wheelbase}, "
                f"{cells}S {capacity} mAh "
                f"(propulsion cannot keep up with its own weight)"
            )
        if code == FAIL_NOT_CONVERGED:
            return (
                f"weight closure did not converge for wheelbase={wheelbase}, "
                f"{cells}S {capacity} mAh"
            )
        if code == FAIL_KV:
            return (
                f"requires a {self.motor_kv[index]:.0f} Kv motor "
                f"(limit {MAX_FEASIBLE_KV:.0f}); "
                f"increase cell count or propeller size"
            )
        if code == FAIL_ESC_CURRENT:
            return (
                f"requires {self.motor_max_current_a[index]:.0f} A ESCs "
                f"(catalog limit {MAX_FEASIBLE_ESC_CURRENT_A:.0f} A)"
            )
        if code == FAIL_C_RATING:
            return (
                f"requires a {self.required_battery_c_rating[index]:.0f}C battery "
                f"(catalog limit {MAX_FEASIBLE_C_RATING:.0f}C); "
                f"increase capacity or reduce weight"
            )
        raise ValueError(f"unknown failure code {code}")

    def evaluation(self, index: int) -> Optional[DesignEvaluation]:
        """Materialize one lane as the scalar path's :class:`DesignEvaluation`."""
        if not bool(self.feasible[index]):
            return None
        weight = WeightBreakdown(
            frame_g=float(self.frame_g[index]),
            battery_g=float(self.battery_g[index]),
            motors_g=float(self.motors_g[index]),
            escs_g=float(self.escs_g[index]),
            propellers_g=float(self.propellers_g[index]),
            compute_g=float(self.grid.compute_weight_g[index]),
            sensors_g=float(self.grid.sensors_weight_g[index]),
            payload_g=float(self.grid.payload_g[index]),
            wires_g=float(self.wires_g[index]),
        )
        return DesignEvaluation(
            weight=weight,
            propeller_inch=float(self.propeller_inch[index]),
            battery_voltage_v=float(self.battery_voltage_v[index]),
            motor_max_current_a=float(self.motor_max_current_a[index]),
            motor_kv=float(self.motor_kv[index]),
            required_battery_c_rating=float(self.required_battery_c_rating[index]),
            hover_power_w=float(self.hover_power_w[index]),
            maneuver_power_w=float(self.maneuver_power_w[index]),
            compute_power_w=float(self.grid.compute_power_w[index]),
            sensors_power_w=float(self.grid.sensors_power_w[index]),
            usable_energy_wh=float(self.usable_energy_wh[index]),
            flight_time_min=float(self.flight_time_min[index]),
            maneuver_flight_time_min=float(self.maneuver_flight_time_min[index]),
            compute_share_hover=float(self.compute_share_hover[index]),
            compute_share_maneuver=float(self.compute_share_maneuver[index]),
            gained_flight_time_min=float(self.gained_flight_time_min[index]),
        )

    def evaluations(self) -> List[Optional[DesignEvaluation]]:
        """Materialize every lane (None where infeasible)."""
        return [self.evaluation(i) for i in range(self.size)]


def propeller_inch_for_wheelbase(wheelbase_mm: np.ndarray) -> np.ndarray:
    """Vectorized ``max_propeller_inch_for_wheelbase``.

    Wheelbase-derived constants are evaluated once per *unique* wheelbase
    through the scalar function itself, then gathered — bit-identical to
    the scalar path by construction, and cheap because a grid has few
    distinct wheelbases.
    """
    wheelbase = np.asarray(wheelbase_mm, dtype=float)
    unique_mm, inverse = np.unique(wheelbase, return_inverse=True)
    inches = np.array(
        [max_propeller_inch_for_wheelbase(float(v)) for v in unique_mm]
    )
    return inches[inverse]


#: Keyed cache for :func:`_wheelbase_constants` — sweeps re-evaluate the
#: same wheelbase column over and over (capacity/cell grids, repeated
#: benchmark runs), and the unique-gather is pure in the wheelbase array.
_WHEELBASE_CONSTANTS_CACHE: Dict[bytes, Tuple[np.ndarray, ...]] = {}
_WHEELBASE_CONSTANTS_CACHE_LIMIT = 64


@memoized_pure
@hot_path_safe
def _wheelbase_constants(
    wheelbase_mm: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Cached per-lane wheelbase-derived constants.

    Returns ``(propeller_inch, propellers_g, ct_rho_d4, sqrt_term)``.
    The returned arrays are shared cache entries — callers must treat them
    as read-only.
    """
    key = wheelbase_mm.tobytes()
    cached = _WHEELBASE_CONSTANTS_CACHE.get(key)
    if cached is None:
        propeller_inch = propeller_inch_for_wheelbase(wheelbase_mm)
        propellers_g, ct_rho_d4, sqrt_term = _per_wheelbase_constants(
            propeller_inch
        )
        cached = (propeller_inch, propellers_g, ct_rho_d4, sqrt_term)
        if len(_WHEELBASE_CONSTANTS_CACHE) >= _WHEELBASE_CONSTANTS_CACHE_LIMIT:
            _WHEELBASE_CONSTANTS_CACHE.clear()
        _WHEELBASE_CONSTANTS_CACHE[key] = cached
    return cached


@pure
@hot_path
def _frame_weight_g(wheelbase_mm: np.ndarray) -> np.ndarray:
    """Vectorized Figure 8b piecewise frame-weight fit."""
    large_g = FIG8B_LARGE_FIT.slope * wheelbase_mm + FIG8B_LARGE_FIT.intercept
    small_g = FIG8B_SMALL_FIT.slope * wheelbase_mm + FIG8B_SMALL_FIT.intercept
    return np.where(wheelbase_mm > SMALL_FRAME_LIMIT_MM, large_g, small_g)


@pure
@hot_path
def _battery_weight_g(cells: np.ndarray, capacity_mah: np.ndarray) -> np.ndarray:
    """Vectorized Figure 7 per-cell-count battery-weight fits."""
    weight_g = np.empty_like(capacity_mah)
    for cell_count, fit in FIG7_WEIGHT_FITS.items():
        mask = cells == cell_count
        if np.any(mask):
            weight_g[mask] = fit.slope * capacity_mah[mask] + fit.intercept
    return weight_g


def _per_wheelbase_constants(
    propeller_inch: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Propeller-derived per-lane constants, via the scalar helpers.

    Returns ``(propellers_g, ct_rho_d4, induced_power_sqrt_term)``.  Each is
    computed once per unique propeller size with the exact scalar-path
    arithmetic (including its libm pow calls), then gathered per lane.
    """
    unique_inch, inverse = np.unique(propeller_inch, return_inverse=True)
    propellers_g = np.empty(unique_inch.size)
    ct_rho_d4 = np.empty(unique_inch.size)
    sqrt_term = np.empty(unique_inch.size)
    for i, inch in enumerate(unique_inch.tolist()):
        propellers_g[i] = propeller_set_weight_g(inch)
        prop = typical_propeller_for(inch)
        # rev_per_s_for_thrust divides by (ct * rho) * D^4 in this order.
        ct_rho_d4[i] = (
            prop.ct * constants.AIR_DENSITY_SEA_LEVEL_KG_M3
        ) * prop.diameter_m**4
        # hover_electrical_power_w divides by sqrt((2 * rho) * disk_area).
        sqrt_term[i] = math.sqrt(
            2.0
            * constants.AIR_DENSITY_SEA_LEVEL_KG_M3
            * constants.propeller_disk_area_m2(inch)
        )
    return propellers_g[inverse], ct_rho_d4[inverse], sqrt_term[inverse]


@pure
@hot_path
def _required_kv(
    thrust_n: np.ndarray,
    ct_rho_d4: np.ndarray,
    voltage_v: np.ndarray,
) -> np.ndarray:
    """Vectorized ``required_kv_for`` with the default 1.15 headroom."""
    rev_per_s = np.sqrt(thrust_n / ct_rho_d4)
    rpm_needed = rev_per_s * 60.0 * 1.15
    return rpm_needed / voltage_v


@pure
@hot_path
def _motor_set_weight_g(kv: np.ndarray, thrust_per_motor_g: np.ndarray) -> np.ndarray:
    """Vectorized ``4 * motor_mass_g_for`` (x^0.75 as sqrt(x*sqrt(x)))."""
    torque_proxy = thrust_per_motor_g / np.sqrt(kv)
    mass_g = 4.2 * np.sqrt(torque_proxy * np.sqrt(torque_proxy))
    return 4.0 * np.maximum(2.0, mass_g)


@pure
@hot_path
def _per_motor_current_a(
    thrust_n: np.ndarray,
    induced_power_sqrt_term: np.ndarray,
    voltage_v: np.ndarray,
) -> np.ndarray:
    """Vectorized ``motor_max_current_a`` (Equation 2, T^1.5 as T*sqrt(T)).

    ``thrust_n`` is the per-motor max thrust — the scalar path derives it
    from the total weight with the same ``twr * total / 4`` expression the
    Kv sizing uses, so callers compute it once and share it.
    """
    ideal_w = thrust_n * np.sqrt(thrust_n) / induced_power_sqrt_term
    power_w = ideal_w / (constants.FULL_THROTTLE_OVERALL_EFFICIENCY * 1.0)
    return power_w / voltage_v


@pure
@hot_path
def _esc_set_weight_g(per_motor_current_a: np.ndarray, esc_class: EscClass) -> np.ndarray:
    """Vectorized ``esc_set_weight_g`` (Figure 8a fit, floor at 4 g)."""
    fit = FIG8A_WEIGHT_FITS[esc_class]
    current_a = np.maximum(per_motor_current_a, 1.0)
    return np.maximum(4.0, fit.slope * current_a + fit.intercept)


@pure
@hot_path
def evaluate_grid(grid: BatchDesignGrid) -> BatchEvaluation:
    """Run the full Equations 1-7 chain over every lane of ``grid``.

    The weight closure (Equation 1's fixed point) iterates all lanes in
    lockstep; lanes freeze the moment they converge or are ruled out, so
    every lane sees exactly the per-iteration arithmetic of the scalar
    ``close_weight`` and the results agree bit for bit.
    """
    n = grid.size
    wheelbase_mm = grid.wheelbase_mm
    capacity_mah = grid.battery_capacity_mah
    twr = grid.twr

    voltage_v = grid.battery_cells * constants.LIPO_CELL_NOMINAL_V
    (
        propeller_inch,
        propellers_g,
        ct_rho_d4,
        induced_power_sqrt_term,
    ) = _wheelbase_constants(wheelbase_mm)

    frame_g = _frame_weight_g(wheelbase_mm)
    battery_g = _battery_weight_g(grid.battery_cells, capacity_mah)
    fixed_g = (
        frame_g
        + battery_g
        + propellers_g
        + grid.compute_weight_g
        + grid.sensors_weight_g
        + grid.payload_g
        + grid.avionics_weight_g
    )

    total_g = fixed_g * 1.3
    motors_g = np.zeros(n)
    escs_g = np.zeros(n)
    wires_g = np.zeros(n)
    failure_code = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)

    esc_fit = FIG8A_WEIGHT_FITS[grid.esc_class]
    # ``ideal / (efficiency * 1.0)`` from the scalar chain — the product is
    # a Python-float constant, folded once.
    full_throttle_eff = constants.FULL_THROTTLE_OVERALL_EFFICIENCY * 1.0

    # The closure loop is the hot core of the engine: every iteration runs
    # ~40 element-wise ufuncs, so per-call overhead (allocation, fancy
    # indexing) dominates at grid sizes of a few hundred lanes.  All lanes
    # therefore march full-width with preallocated scratch buffers (``out=``
    # leaves the loop allocation-free), and results are committed back only
    # ``where=active`` — frozen lanes (converged/diverged) recompute harmless
    # garbage that is never stored, so every *committed* value still sees
    # exactly the scalar ``close_weight`` arithmetic sequence.  Every ufunc
    # below is element-wise, so lockstep full-width evaluation produces the
    # same bits as per-lane evaluation.
    thrust_g = np.empty(n)
    thrust_n = np.empty(n)
    kv = np.empty(n)
    new_motors_g = np.empty(n)
    new_escs_g = np.empty(n)
    new_wires_g = np.empty(n)
    new_total_g = np.empty(n)
    scratch_a = np.empty(n)
    scratch_b = np.empty(n)
    lane_flags = np.empty(n, dtype=bool)

    iterations_used = _MAX_ITERATIONS
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        for iteration in range(_MAX_ITERATIONS):
            # Divergence freezes a lane before this iteration's update,
            # exactly like the scalar loop's check at the top of its body.
            # Frozen diverged lanes have their total zeroed (the value is
            # never read again) so this stays a single scalar comparison on
            # the common no-divergence path.
            if float(total_g.max()) > _DIVERGENCE_LIMIT_G:
                np.greater(total_g, _DIVERGENCE_LIMIT_G, out=lane_flags)
                np.logical_and(lane_flags, active, out=lane_flags)
                failure_code[lane_flags] = FAIL_DIVERGED
                total_g[lane_flags] = 0.0
                np.logical_not(lane_flags, out=lane_flags)
                np.logical_and(active, lane_flags, out=active)
                if not active.any():
                    break
            # Equation 1 body: thrust -> Kv -> motor mass -> current -> ESC
            # mass -> wires -> new total (operand order mirrors close_weight).
            np.multiply(twr, total_g, out=thrust_g)
            np.divide(thrust_g, 4.0, out=thrust_g)
            np.divide(thrust_g, 1000.0, out=thrust_n)
            np.multiply(thrust_n, constants.GRAVITY_M_S2, out=thrust_n)
            np.divide(thrust_n, ct_rho_d4, out=kv)
            np.sqrt(kv, out=kv)
            np.multiply(kv, 60.0, out=kv)
            np.multiply(kv, 1.15, out=kv)
            np.divide(kv, voltage_v, out=kv)
            np.sqrt(kv, out=scratch_a)
            np.divide(thrust_g, scratch_a, out=scratch_a)  # torque proxy
            np.sqrt(scratch_a, out=scratch_b)
            np.multiply(scratch_a, scratch_b, out=scratch_b)
            np.sqrt(scratch_b, out=scratch_b)
            np.multiply(scratch_b, 4.2, out=scratch_b)
            np.maximum(scratch_b, 2.0, out=scratch_b)
            np.multiply(scratch_b, 4.0, out=new_motors_g)
            np.sqrt(thrust_n, out=scratch_a)
            np.multiply(thrust_n, scratch_a, out=scratch_a)
            np.divide(scratch_a, induced_power_sqrt_term, out=scratch_a)
            np.divide(scratch_a, full_throttle_eff, out=scratch_a)
            np.divide(scratch_a, voltage_v, out=scratch_a)  # per-motor A
            np.maximum(scratch_a, 1.0, out=scratch_a)
            np.multiply(scratch_a, esc_fit.slope, out=scratch_a)
            np.add(scratch_a, esc_fit.intercept, out=scratch_a)
            np.maximum(scratch_a, 4.0, out=new_escs_g)
            np.add(new_motors_g, new_escs_g, out=scratch_a)
            np.add(scratch_a, battery_g, out=scratch_a)
            np.multiply(
                scratch_a, constants.WIRING_WEIGHT_FRACTION, out=new_wires_g
            )
            np.add(fixed_g, new_motors_g, out=scratch_a)
            np.add(scratch_a, new_escs_g, out=scratch_a)
            np.add(scratch_a, new_wires_g, out=new_total_g)
            np.subtract(new_total_g, total_g, out=scratch_a)
            np.absolute(scratch_a, out=scratch_a)
            # Commit this iteration's update on the still-active lanes; the
            # newly converged ones freeze at exactly these values.
            np.copyto(total_g, new_total_g, where=active)
            np.copyto(motors_g, new_motors_g, where=active)
            np.copyto(escs_g, new_escs_g, where=active)
            np.copyto(wires_g, new_wires_g, where=active)
            # A lane stays active while |new - old| >= tolerance.
            np.greater_equal(scratch_a, _TOLERANCE_G, out=lane_flags)
            np.logical_and(active, lane_flags, out=active)
            if int(np.count_nonzero(active)) <= _SCALAR_TAIL_WIDTH:
                iterations_used = iteration + 1
                break

    # Straggler lanes finish per-lane through the scalar helpers themselves
    # (the oracle), so the hand-off cannot perturb a single bit.  Each lane
    # gets exactly the iteration budget the scalar loop would have left.
    if active.any():
        tail_budget = _MAX_ITERATIONS - iterations_used
        propeller_models: Dict[float, object] = {}
        for lane in np.flatnonzero(active).tolist():
            inch = float(propeller_inch[lane])
            propeller = propeller_models.get(inch)
            if propeller is None:
                propeller = typical_propeller_for(inch)
                propeller_models[inch] = propeller
            lane_total = float(total_g[lane])
            lane_twr = float(twr[lane])
            lane_voltage = float(voltage_v[lane])
            lane_battery = float(battery_g[lane])
            lane_fixed = float(fixed_g[lane])
            code = FAIL_NOT_CONVERGED
            for _ in range(tail_budget):
                if lane_total > _DIVERGENCE_LIMIT_G:
                    code = FAIL_DIVERGED
                    break
                lane_thrust_g = lane_twr * lane_total / 4.0
                lane_kv = required_kv_for(propeller, lane_thrust_g, lane_voltage)
                lane_motors = 4.0 * motor_mass_g_for(lane_kv, lane_thrust_g)
                lane_current = scalar_motor_max_current_a(
                    lane_total, inch, lane_voltage, lane_twr
                )
                lane_escs = esc_set_weight_g(
                    max(lane_current, 1.0), grid.esc_class
                )
                lane_wires = constants.WIRING_WEIGHT_FRACTION * (
                    lane_motors + lane_escs + lane_battery
                )
                new_total = lane_fixed + lane_motors + lane_escs + lane_wires
                if abs(new_total - lane_total) < _TOLERANCE_G:
                    total_g[lane] = new_total
                    motors_g[lane] = lane_motors
                    escs_g[lane] = lane_escs
                    wires_g[lane] = lane_wires
                    code = 0
                    break
                lane_total = new_total
            failure_code[lane] = code
        active.fill(False)

    # Post-closure feasibility gates, in the scalar path's raise order.
    # The gates run on the *closure* total (which includes avionics), exactly
    # like close_weight's final checks.
    closed = failure_code == 0
    thrust_per_motor_g = twr * total_g / 4.0
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        gate_thrust_n = thrust_per_motor_g / 1000.0 * constants.GRAVITY_M_S2
        gate_kv = _required_kv(gate_thrust_n, ct_rho_d4, voltage_v)
        gate_current_a = _per_motor_current_a(
            gate_thrust_n, induced_power_sqrt_term, voltage_v
        )
        gate_c_rating = 4.0 * gate_current_a * 1.2 / (capacity_mah / 1000.0)
    failure_code[closed & (gate_kv > MAX_FEASIBLE_KV)] = FAIL_KV
    failure_code[
        closed
        & (failure_code == 0)
        & (gate_current_a > MAX_FEASIBLE_ESC_CURRENT_A)
    ] = FAIL_ESC_CURRENT
    failure_code[
        closed & (failure_code == 0) & (gate_c_rating > MAX_FEASIBLE_C_RATING)
    ] = FAIL_C_RATING
    feasible = failure_code == 0

    # Equations 2-7 on the surviving lanes.  DroneDesign.evaluate() works
    # from WeightBreakdown.total_g — the sum of the breakdown terms, which
    # does NOT include avionics — so the reported current/Kv/powers use that
    # total, replicating its summation order term for term.
    breakdown_total_g = (
        frame_g
        + battery_g
        + motors_g
        + escs_g
        + propellers_g
        + grid.compute_weight_g
        + grid.sensors_weight_g
        + grid.payload_g
        + wires_g
    )
    eval_thrust_per_motor_g = twr * breakdown_total_g / 4.0
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        eval_thrust_n = eval_thrust_per_motor_g / 1000.0 * constants.GRAVITY_M_S2
        motor_current_a = _per_motor_current_a(
            eval_thrust_n, induced_power_sqrt_term, voltage_v
        )
        motor_kv = _required_kv(eval_thrust_n, ct_rho_d4, voltage_v)
        c_rating = 4.0 * motor_current_a * 1.2 / (capacity_mah / 1000.0)
        propulsion_hover_w = 4.0 * motor_current_a * grid.hover_load * voltage_v
        hover_power_w = (
            propulsion_hover_w + grid.compute_power_w
        ) + grid.sensors_power_w
        propulsion_maneuver_w = 4.0 * motor_current_a * grid.maneuver_load * voltage_v
        maneuver_power_w = (
            propulsion_maneuver_w + grid.compute_power_w
        ) + grid.sensors_power_w
        usable_energy_wh = (
            capacity_mah / 1000.0 * voltage_v * constants.LIPO_DRAIN_LIMIT * 1.0
        )
        flight_time = usable_energy_wh / hover_power_w * 60.0
        maneuver_flight_time = usable_energy_wh / maneuver_power_w * 60.0
        share_hover = grid.compute_power_w / hover_power_w
        share_maneuver = grid.compute_power_w / maneuver_power_w
        gained_min = flight_time * share_hover / (1.0 - share_hover)

    # Mask infeasible lanes to NaN in place — every array below is freshly
    # computed this call (never a cache entry or grid field), so mutating
    # is safe and avoids a full np.where pass per output array.
    infeasible_idx = np.flatnonzero(~feasible)

    def _masked(values: np.ndarray) -> np.ndarray:
        values[infeasible_idx] = np.nan
        return values

    # Kv / current / C-rating carry the *gate* values on lanes that closed
    # but then failed a catalog limit — failure_message quotes them.
    nan = np.full(n, np.nan)
    closed_mask = closed
    return BatchEvaluation(
        grid=grid,
        feasible=feasible,
        failure_code=failure_code,
        frame_g=_masked(frame_g),
        battery_g=_masked(battery_g),
        motors_g=_masked(motors_g),
        escs_g=_masked(escs_g),
        propellers_g=_masked(propellers_g.copy()),
        wires_g=_masked(wires_g),
        total_weight_g=_masked(breakdown_total_g),
        propeller_inch=_masked(propeller_inch.copy()),
        battery_voltage_v=_masked(voltage_v),
        motor_max_current_a=np.where(
            feasible, motor_current_a, np.where(closed_mask, gate_current_a, nan)
        ),
        motor_kv=np.where(
            feasible, motor_kv, np.where(closed_mask, gate_kv, nan)
        ),
        required_battery_c_rating=np.where(
            feasible, c_rating, np.where(closed_mask, gate_c_rating, nan)
        ),
        hover_power_w=_masked(hover_power_w),
        maneuver_power_w=_masked(maneuver_power_w),
        usable_energy_wh=_masked(usable_energy_wh),
        flight_time_min=_masked(flight_time),
        maneuver_flight_time_min=_masked(maneuver_flight_time),
        compute_share_hover=_masked(share_hover),
        compute_share_maneuver=_masked(share_maneuver),
        gained_flight_time_min=_masked(gained_min),
    )


@pure
def evaluate_batch(
    wheelbase_mm: object,
    battery_cells: object,
    battery_capacity_mah: object,
    **kwargs: object,
) -> BatchEvaluation:
    """Convenience wrapper: broadcast inputs, build the grid, evaluate it."""
    grid = BatchDesignGrid.from_arrays(
        wheelbase_mm, battery_cells, battery_capacity_mah, **kwargs  # type: ignore[arg-type]
    )
    return evaluate_grid(grid)


def capacity_cells_grid(
    cell_counts: Tuple[int, ...],
    capacities_mah: Tuple[float, ...],
) -> Dict[str, np.ndarray]:
    """Flatten a cells x capacities product grid (cells-major ordering).

    The ordering matches the scalar sweep's nested loops, so lane ``i``
    corresponds to the ``i``-th design the scalar path would evaluate.
    """
    cells = np.repeat(np.asarray(cell_counts, dtype=np.int64), len(capacities_mah))
    capacities = np.tile(np.asarray(capacities_mah, dtype=float), len(cell_counts))
    return {"battery_cells": cells, "battery_capacity_mah": capacities}
