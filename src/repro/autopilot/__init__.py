"""Autopilot stack: ArduCopter-like flight code, DroneKit-like API, and a
MAVLink-like transport (paper Section 4)."""

from repro.autopilot.arducopter import (
    ArmingError,
    Autopilot,
    FlightMode,
    Geofence,
    MissionItem,
)
from repro.autopilot.dronekit import BatteryInfo, LocationLocal, Vehicle, connect
from repro.autopilot.offload import (
    OffboardComputeNode,
    OffloadReport,
    PoseStalenessWatchdog,
    PoseUpdate,
    evaluate_offload,
    staleness_timeline,
)
from repro.autopilot.mavlink import (
    Command,
    FrameError,
    Link,
    Message,
    MessageType,
    decode,
)

__all__ = [
    "ArmingError",
    "Autopilot",
    "FlightMode",
    "Geofence",
    "MissionItem",
    "BatteryInfo",
    "LocationLocal",
    "Vehicle",
    "connect",
    "OffboardComputeNode",
    "OffloadReport",
    "PoseStalenessWatchdog",
    "PoseUpdate",
    "evaluate_offload",
    "staleness_timeline",
    "Command",
    "FrameError",
    "Link",
    "Message",
    "MessageType",
    "decode",
]
