"""Flight controllers and on-board compute boards (paper Table 4).

The paper divides boards into *basic* (inner-loop only, ultra low power) and
*improved* (customizable inner loop plus some outer-loop capability), then
abstracts them as two compute power levels — 3 W and 20 W — for the
computation-footprint study of Section 3.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.components.base import Component


class BoardClass(enum.Enum):
    """Capability class of a flight controller / compute board (Table 4)."""

    BASIC = "basic"
    IMPROVED = "improved"


#: Representative compute power levels used by the Section 3.2 footprint study.
BASIC_CHIP_POWER_W = 3.0
ADVANCED_CHIP_POWER_W = 20.0


@dataclass(frozen=True)
class ComputeBoard(Component):
    """A flight controller or companion compute board."""

    power_w: float = 1.0
    board_class: BoardClass = BoardClass.BASIC
    processor: str = "STM32F Arm Cortex-M"
    supports_outer_loop: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.power_w <= 0:
            raise ValueError(f"power must be positive, got {self.power_w}")


def _board(
    name: str,
    manufacturer: str,
    weight_g: float,
    current_a: float,
    voltage_v: float,
    board_class: BoardClass,
    processor: str,
    supports_outer_loop: bool,
) -> ComputeBoard:
    return ComputeBoard(
        name=name,
        manufacturer=manufacturer,
        weight_g=weight_g,
        power_w=current_a * voltage_v,
        board_class=board_class,
        processor=processor,
        supports_outer_loop=supports_outer_loop,
    )


def table4_flight_controllers() -> List[ComputeBoard]:
    """The Table 4 census of flight controllers and compute boards."""
    basic = BoardClass.BASIC
    improved = BoardClass.IMPROVED
    return [
        _board("SucceX-E F4", "iFlight", 7.6, 0.1, 5.0, basic,
               "STM32F405 Cortex-M4", False),
        _board("NAZA-M Lite", "DJI", 66.3, 0.3, 5.0, basic,
               "STM32F Cortex-M", False),
        _board("NAZA-M V2", "DJI", 82.0, 0.3, 5.0, basic,
               "STM32F Cortex-M", False),
        _board("Pixhawk 4", "Pixhawk", 15.8, 0.4, 5.0, basic,
               "STM32F765 Cortex-M7", False),
        _board("Mateksys F405", "Mateksys", 17.0, 0.2, 5.0, basic,
               "STM32F405 Cortex-M4", False),
        _board("Intel Aero", "Intel", 30.0, 2.0, 5.0, improved,
               "Intel Atom x7", True),
        _board("Navio2", "Emlid", 23.0, 0.15, 5.0, improved,
               "STM32F Cortex-M3 co-processor", True),
        _board("Raspberry Pi 4", "Raspberry Pi Foundation", 50.0, 1.0, 5.0,
               improved, "BCM2711 Cortex-A72", True),
        _board("Jetson TX2", "Nvidia", 85.0, 2.0, 5.0, improved,
               "Denver2 + Cortex-A57 + Pascal GPU", True),
        ComputeBoard(
            name="Manifold", manufacturer="DJI", weight_g=200.0, power_w=20.0,
            board_class=improved, processor="Tegra K1",
            supports_outer_loop=True,
        ),
    ]


def boards_by_class(board_class: BoardClass) -> List[ComputeBoard]:
    """Table 4 boards filtered to one capability class."""
    return [b for b in table4_flight_controllers() if b.board_class is board_class]


def find_board(name: str) -> ComputeBoard:
    """Look up a Table 4 board by (case-insensitive) name."""
    wanted = name.strip().lower()
    for board in table4_flight_controllers():
        if board.name.lower() == wanted:
            return board
    known = ", ".join(b.name for b in table4_flight_controllers())
    raise KeyError(f"unknown board {name!r}; known boards: {known}")
