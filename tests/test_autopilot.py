"""Unit/integration tests: MAVLink-like protocol, autopilot, DroneKit API."""

import numpy as np
import pytest

from repro.autopilot.arducopter import (
    ArmingError,
    Autopilot,
    FlightMode,
    MissionItem,
)
from repro.autopilot.dronekit import connect
from repro.autopilot.mavlink import (
    Command,
    FrameError,
    Link,
    Message,
    MessageType,
    decode,
)
from repro.sim.simulator import DroneModel, FlightSimulator


def make_autopilot() -> Autopilot:
    model = DroneModel(
        mass_kg=1.071, wheelbase_mm=450.0, battery_cells=3,
        battery_capacity_mah=3000.0,
    )
    return Autopilot(FlightSimulator(model, physics_rate_hz=400.0))


class TestMavlink:
    def test_encode_decode_roundtrip(self):
        message = Message(
            MessageType.SET_POSITION_TARGET, (1.0, 2.0, 3.0), sequence=7
        )
        decoded = decode(message.encode())
        assert decoded.message_type is MessageType.SET_POSITION_TARGET
        assert decoded.payload == pytest.approx((1.0, 2.0, 3.0))
        assert decoded.sequence == 7

    def test_checksum_detects_corruption(self):
        frame = bytearray(Message(MessageType.HEARTBEAT).encode())
        frame[2] ^= 0xFF
        with pytest.raises(FrameError):
            decode(bytes(frame))

    def test_short_frame_rejected(self):
        with pytest.raises(FrameError):
            decode(b"\xfd\x00")

    def test_link_delivery(self):
        link = Link()
        link.send(MessageType.HEARTBEAT)
        link.send(MessageType.BATTERY_STATUS, (0.9,))
        messages = link.drain()
        assert [m.message_type for m in messages] == [
            MessageType.HEARTBEAT, MessageType.BATTERY_STATUS,
        ]
        assert link.receive() is None

    def test_lossy_link_drops(self):
        link = Link(loss_probability=0.5, seed=1)
        for _ in range(200):
            link.send(MessageType.HEARTBEAT)
        assert 60 < link.delivered < 140
        assert link.sent == 200

    def test_sequence_numbers_increment(self):
        link = Link()
        link.send(MessageType.HEARTBEAT)
        link.send(MessageType.HEARTBEAT)
        first, second = link.drain()
        assert second.sequence == first.sequence + 1

    def test_loss_probability_validation(self):
        with pytest.raises(ValueError):
            Link(loss_probability=1.0)


class TestAutopilot:
    def test_arm_and_takeoff(self):
        autopilot = make_autopilot()
        autopilot.arm()
        autopilot.takeoff(4.0)
        for _ in range(60):
            autopilot.update(0.1)
        assert autopilot.sim.body.state.position_m[2] == pytest.approx(4.0, abs=0.4)

    def test_cannot_takeoff_disarmed(self):
        autopilot = make_autopilot()
        with pytest.raises(ArmingError):
            autopilot.takeoff(3.0)

    def test_cannot_arm_twice(self):
        autopilot = make_autopilot()
        autopilot.arm()
        with pytest.raises(ArmingError):
            autopilot.arm()

    def test_refuses_disarm_in_air(self):
        autopilot = make_autopilot()
        autopilot.arm()
        autopilot.takeoff(4.0)
        for _ in range(50):
            autopilot.update(0.1)
        with pytest.raises(ArmingError):
            autopilot.disarm()

    def test_low_battery_arming_check(self):
        autopilot = make_autopilot()
        autopilot.sim.battery.used_mah = autopilot.sim.battery.capacity_mah * 0.8
        with pytest.raises(ArmingError, match="battery"):
            autopilot.arm()

    def test_land_mode_descends(self):
        autopilot = make_autopilot()
        autopilot.arm()
        autopilot.takeoff(4.0)
        for _ in range(50):
            autopilot.update(0.1)
        autopilot.set_mode(FlightMode.LAND)
        for _ in range(80):
            autopilot.update(0.1)
        assert autopilot.sim.body.state.position_m[2] < 0.5

    def test_rtl_returns_home(self):
        autopilot = make_autopilot()
        autopilot.arm()
        autopilot.takeoff(4.0)
        for _ in range(50):
            autopilot.update(0.1)
        autopilot.goto(np.array([6.0, 0.0, 4.0]))
        for _ in range(60):
            autopilot.update(0.1)
        autopilot.set_mode(FlightMode.RTL)
        for _ in range(80):
            autopilot.update(0.1)
        position = autopilot.sim.body.state.position_m
        assert np.linalg.norm(position[0:2]) < 1.0

    def test_battery_failsafe_triggers_rtl(self):
        autopilot = make_autopilot()
        autopilot.arm()
        autopilot.takeoff(4.0)
        for _ in range(30):
            autopilot.update(0.1)
        # Drain the battery to just under the low-battery threshold.
        battery = autopilot.sim.battery
        battery.used_mah = battery.capacity_mah * (
            1.0 - Autopilot.LOW_BATTERY_SOC
        ) + 1.0
        autopilot.update(0.1)
        assert autopilot.failsafe_triggered
        assert autopilot.mode in (FlightMode.RTL, FlightMode.LAND)

    def test_mission_execution(self):
        autopilot = make_autopilot()
        autopilot.arm()
        autopilot.takeoff(4.0)
        for _ in range(50):
            autopilot.update(0.1)
        autopilot.upload_mission([
            MissionItem(np.array([3.0, 0.0, 4.0])),
            MissionItem(np.array([3.0, 3.0, 4.0])),
        ])
        autopilot.set_mode(FlightMode.AUTO)
        for _ in range(250):
            autopilot.update(0.1)
            if autopilot.mission_complete:
                break
        assert autopilot.mission_complete

    def test_mission_progress_fraction(self):
        autopilot = make_autopilot()
        # no mission uploaded: progress is defined and zero
        assert autopilot.mission_progress == 0.0
        autopilot.arm()
        autopilot.takeoff(4.0)
        for _ in range(50):
            autopilot.update(0.1)
        autopilot.upload_mission([
            MissionItem(np.array([3.0, 0.0, 4.0])),
            MissionItem(np.array([3.0, 3.0, 4.0])),
        ])
        assert autopilot.mission_progress == 0.0
        autopilot.set_mode(FlightMode.AUTO)
        seen = [autopilot.mission_progress]
        for _ in range(250):
            autopilot.update(0.1)
            seen.append(autopilot.mission_progress)
            if autopilot.mission_complete:
                break
        # progress climbs monotonically through 0.5 to 1.0 and saturates
        assert autopilot.mission_progress == 1.0
        assert 0.5 in seen
        assert all(b >= a for a, b in zip(seen, seen[1:]))
        assert max(seen) <= 1.0

    def test_command_long_over_link(self):
        autopilot = make_autopilot()
        autopilot.link.send(
            MessageType.COMMAND_LONG, (float(Command.ARM_DISARM), 1.0)
        )
        autopilot.update(0.1)
        assert autopilot.armed
        autopilot.link.send(
            MessageType.COMMAND_LONG, (float(Command.TAKEOFF), 3.0)
        )
        for _ in range(50):
            autopilot.update(0.1)
        assert autopilot.sim.body.state.position_m[2] > 2.0

    def test_state_reports_downlinked(self):
        autopilot = make_autopilot()
        autopilot.update(0.1)
        reports = [
            m for m in autopilot.link.drain()
            if m.message_type is MessageType.STATE_REPORT
        ]
        assert reports
        assert len(reports[0].payload) == 7


class TestDroneKit:
    def test_connect_and_fly(self):
        vehicle = connect()
        vehicle.armed = True
        vehicle.simple_takeoff(4.0, wait_s=6.0)
        assert vehicle.location.altitude == pytest.approx(4.0, abs=0.5)
        vehicle.simple_goto(3.0, 2.0, 4.0, wait_s=6.0)
        assert vehicle.location.east == pytest.approx(3.0, abs=0.5)
        assert vehicle.location.north == pytest.approx(2.0, abs=0.5)
        vehicle.close()

    def test_mode_property(self):
        vehicle = connect()
        assert vehicle.mode == "STABILIZE"
        vehicle.mode = "GUIDED"
        assert vehicle.mode == "GUIDED"

    def test_battery_attribute(self):
        vehicle = connect()
        assert vehicle.battery.level == pytest.approx(1.0)
        assert vehicle.battery.voltage > 11.0

    def test_mission_api(self):
        vehicle = connect()
        vehicle.armed = True
        vehicle.simple_takeoff(4.0, wait_s=6.0)
        vehicle.upload_mission([[2.0, 0.0, 4.0]])
        vehicle.start_mission()
        vehicle.wait(12.0)
        # The mission completes and the autopilot returns to launch.
        assert vehicle._autopilot.mission_complete
        assert vehicle.mode in ("RTL", "LAND")
        assert abs(vehicle.location.east) < 1.0

    def test_events_logged(self):
        vehicle = connect()
        vehicle.armed = True
        events = [event for _, event in vehicle.events()]
        assert "armed" in events

    def test_wait_validation(self):
        vehicle = connect()
        with pytest.raises(ValueError):
            vehicle.wait(0.0)
