"""End-to-end integration: the full paper pipeline in one flow.

Design a drone with the Equations 1-7 engine, fly it in the closed-loop
simulator via the DroneKit API while SLAM runs, then quantify the FPGA
offloading decision — the complete Section 3 -> Section 4 -> Section 5 story.
"""

import numpy as np
import pytest

from repro.autopilot.arducopter import Autopilot
from repro.autopilot.dronekit import Vehicle
from repro.core.design import DroneDesign
from repro.core.wizard import DesignWizard
from repro.platforms.profiles import figure17_study, fpga_profile, rpi4_profile, table5
from repro.sim.simulator import DroneModel, FlightSimulator
from repro.sim.telemetry import TelemetryLog


class TestDesignToFlight:
    @pytest.fixture(scope="class")
    def designed_drone(self):
        design = DroneDesign(
            wheelbase_mm=450.0, battery_cells=3, battery_capacity_mah=3000.0,
            compute_power_w=4.56,  # RPi running autopilot + SLAM
        )
        return design.evaluate()

    def test_designed_drone_flies_in_simulator(self, designed_drone):
        model = DroneModel(
            mass_kg=designed_drone.total_weight_g / 1000.0,
            wheelbase_mm=450.0,
            battery_cells=3,
            battery_capacity_mah=3000.0,
            compute_power_w=designed_drone.compute_power_w,
        )
        sim = FlightSimulator(model, physics_rate_hz=400.0)
        vehicle = Vehicle(Autopilot(sim))
        vehicle.armed = True
        vehicle.simple_takeoff(5.0, wait_s=8.0)
        assert vehicle.location.altitude == pytest.approx(5.0, abs=0.5)

        # Simulated hover power must agree with the design equations.
        measured = sim.average_power_w(since_s=6.0)
        assert measured == pytest.approx(designed_drone.hover_power_w, rel=0.3)

    def test_flight_time_prediction_consistent_with_battery_drain(
        self, designed_drone
    ):
        """Extrapolating the simulator's drain must land near Equation 5."""
        model = DroneModel(
            mass_kg=designed_drone.total_weight_g / 1000.0,
            wheelbase_mm=450.0, battery_cells=3, battery_capacity_mah=3000.0,
            compute_power_w=designed_drone.compute_power_w,
        )
        sim = FlightSimulator(model, physics_rate_hz=400.0)
        sim.goto([0.0, 0.0, 5.0])
        sim.run_for(30.0)
        drained = sim.battery.used_mah
        usable = sim.battery.usable_mah
        # Ignore the takeoff transient by scaling from the last 20 s.
        extrapolated_min = usable / (drained / 30.0) / 60.0
        assert extrapolated_min == pytest.approx(
            designed_drone.flight_time_min, rel=0.35
        )


class TestSlamOffloadDecision:
    def test_wizard_quantifies_fpga_offload(self, slam_mh01):
        """The Figure 12 procedure wired to real Section 5 artifacts."""
        wizard = DesignWizard(wheelbase_mm=450.0)
        wizard.add_compute(power_w=10.0, weight_g=85.0)  # TX2-class
        wizard.select_battery(3, 3000.0)
        fpga = fpga_profile()
        outcome = wizard.quantify_optimization(
            power_saved_w=10.0 - fpga.power_overhead_w,
            weight_delta_g=fpga.weight_overhead_g - 85.0,
        )
        assert outcome.gained_flight_time_min > 0.5

    def test_speedup_and_flight_gain_together(self, slam_mh01):
        study = figure17_study([slam_mh01])
        rows = {row.platform: row for row in table5(study)}
        # FPGA: both faster and flight-positive; TX2: faster but
        # flight-negative — the paper's central tension.
        assert rows["FPGA"].slam_speedup > 10.0
        assert rows["FPGA"].gained_flight_time_small_min > 0.0
        assert rows["TX2"].slam_speedup > 1.5
        assert rows["TX2"].gained_flight_time_small_min < 0.0

    def test_rpi_meets_camera_rate_but_degrades_autopilot(
        self, slam_mh01, interference
    ):
        """Section 5.1's conclusion in one assertion pair."""
        rpi = rpi4_profile()
        slam_fps = slam_mh01.frames_processed / rpi.total_time_s(
            slam_mh01.breakdown
        )
        assert slam_fps > 20.0  # meets the sensor rate
        assert interference.ipc_degradation > 1.3  # but hurts the autopilot


class TestTelemetryPipeline:
    def test_mission_with_telemetry_downlink(self):
        model = DroneModel(
            mass_kg=1.071, wheelbase_mm=450.0, battery_cells=3,
            battery_capacity_mah=3000.0,
        )
        sim = FlightSimulator(model, physics_rate_hz=400.0)
        from repro.sim.missions import waypoint_mission

        waypoint_mission([[3.0, 0.0, 4.0], [3.0, 3.0, 4.0]],
                         leg_duration_s=5.0).run(sim)
        log = TelemetryLog(downlink_rate_hz=2.0)
        log.ingest_all(sim)
        summary = log.summary()
        assert summary["max_altitude_m"] > 3.0
        assert summary["final_soc"] < 1.0
        assert summary["records"] > 30
