"""CLI: ``python -m repro.analysis [paths...]``.

Exit status is 0 when clean, 1 when violations are found, 2 on usage
errors — the same contract CI relies on.  With ``--baseline FILE`` only
*new* violations (not fingerprinted in the file) are fatal;
``--update-baseline`` rewrites the file from the current run and exits 0.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import baseline as baseline_mod
from repro.analysis import cache as cache_mod
from repro.analysis.base import ALL_RULES
from repro.analysis.runner import (
    analyze_paths,
    discover,
    format_human,
    format_json,
    list_rules,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST lint suite: units, determinism, hot-path, config "
            "immutability, plus the interprocedural passes (inter-units, "
            "rng-taint, purity, hotpath-escape)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="gate only on violations not fingerprinted in FILE",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline FILE from this run's findings and exit 0",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the full JSON report to FILE (for CI artifacts)",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        help="reuse results from FILE when no analyzed file changed",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return 0
    if args.update_baseline and not args.baseline:
        print("--update-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]
        unknown = [rule for rule in rules if rule not in ALL_RULES]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    try:
        violations = None
        cache_key = None
        if args.cache:
            cache_key = cache_mod.run_key(discover(args.paths), rules)
            violations = cache_mod.load(args.cache, cache_key)
        if violations is None:
            violations = analyze_paths(args.paths, rules=rules)
            if args.cache and cache_key is not None:
                cache_mod.store(args.cache, cache_key, violations)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(format_json(violations))

    if args.update_baseline:
        baseline_mod.write(args.baseline, violations)
        print(
            f"baseline updated: {args.baseline} "
            f"({len(violations)} accepted finding(s))"
        )
        return 0

    if args.baseline:
        try:
            accepted = baseline_mod.load(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = baseline_mod.gate(violations, accepted)
        print(format_json(violations) if args.json else format_human(result.new))
        if not args.json and (result.known or result.fixed):
            print(
                f"baseline: {len(result.known)} accepted, "
                f"{result.fixed} fixed (safe to --update-baseline)"
            )
        return 1 if result.new else 0

    print(format_json(violations) if args.json else format_human(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
