"""Steady-state timing harness for the perf-regression benchmarks.

Wall-clock timing lives here, *outside* ``src/`` — the determinism checker
(`repro.analysis`) bans wall-clock reads in library code, and rightly so;
benchmarks are the one place measuring real time is the point.

The measurement discipline:

* every workload is warmed up before any sample is taken (imports, caches,
  allocator pools, branch predictors all settle);
* each sample is one full workload invocation under ``time.perf_counter``;
* the reported statistic is the **median** of N runs — robust against the
  one-sided noise (scheduler preemption, thermal dips) that plagues shared
  runners.  The minimum is recorded too, as the low-noise floor estimate.

Baselines are plain JSON (``BENCH_*.json``) so CI can diff them without any
tooling beyond this file.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Median regression beyond this fraction of the baseline fails a compare.
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class TimingResult:
    """Steady-state timing of one workload."""

    name: str
    median_s: float
    min_s: float
    mean_s: float
    runs: int
    warmup: int

    def as_dict(self) -> dict:
        return {
            "median_s": self.median_s,
            "min_s": self.min_s,
            "mean_s": self.mean_s,
            "runs": self.runs,
            "warmup": self.warmup,
        }


def time_callable(
    name: str,
    fn: Callable[[], object],
    *,
    warmup: int = 3,
    runs: int = 9,
) -> TimingResult:
    """Median-of-``runs`` wall-clock timing of ``fn`` after ``warmup`` calls."""
    if runs < 1:
        raise ValueError(f"need at least one timed run, got {runs}")
    if warmup < 0:
        raise ValueError(f"warmup cannot be negative, got {warmup}")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return TimingResult(
        name=name,
        median_s=float(statistics.median(samples)),
        min_s=float(min(samples)),
        mean_s=float(statistics.fmean(samples)),
        runs=runs,
        warmup=warmup,
    )


#: ``np`` module attributes counted by :func:`count_array_constructions`.
#: These are the Python-level constructors library code reaches for; C-level
#: temporaries from ufuncs/operators are invisible here, which is the point —
#: the preallocation discipline is about *named* per-tick constructions.
_CONSTRUCTOR_NAMES = ("array", "zeros", "empty", "ones", "full")


def count_array_constructions(fn: Callable[[], object]) -> int:
    """Number of Python-level NumPy array constructions during ``fn()``.

    Temporarily wraps ``np.array``/``np.zeros``/``np.empty``/``np.ones``/
    ``np.full`` with counting shims, calls ``fn`` once, and restores the
    originals.  Used by the allocation-budget checks: a steady-state hot
    loop that preallocates its scratch should construct a small, *fixed*
    number of arrays per tick regardless of how long it runs or how many
    ensemble lanes it carries.
    """
    import numpy as np

    count = 0
    originals = {name: getattr(np, name) for name in _CONSTRUCTOR_NAMES}

    def _counting(original: Callable) -> Callable:
        def shim(*args: object, **kwargs: object) -> object:
            nonlocal count
            count += 1
            return original(*args, **kwargs)

        return shim

    for name, original in originals.items():
        setattr(np, name, _counting(original))
    try:
        fn()
    finally:
        for name, original in originals.items():
            setattr(np, name, original)
    return count


def write_baseline(
    path: Path,
    results: List[TimingResult],
    extra: Optional[dict] = None,
) -> None:
    """Serialize timing results (plus metadata) as a baseline JSON file."""
    payload: dict = {
        "schema": SCHEMA_VERSION,
        "workloads": {r.name: r.as_dict() for r in results},
    }
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_baseline(path: Path) -> dict:
    """Load a baseline JSON, validating its schema version."""
    payload = json.loads(path.read_text())
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path.name}: baseline schema {schema} != expected {SCHEMA_VERSION}"
        )
    return payload


def compare_to_baseline(
    results: List[TimingResult],
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regression report: one line per workload slower than baseline allows.

    A workload regresses when its fresh median exceeds the baseline median
    by more than ``tolerance`` (fractional).  Workloads missing from the
    baseline are skipped — new benchmarks should not fail the first compare.
    Returns the list of regression messages (empty = pass).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance cannot be negative, got {tolerance}")
    regressions: List[str] = []
    workloads: Dict[str, dict] = baseline.get("workloads", {})
    for result in results:
        base = workloads.get(result.name)
        if base is None:
            continue
        base_median = float(base["median_s"])
        limit = base_median * (1.0 + tolerance)
        if result.median_s > limit:
            regressions.append(
                f"{result.name}: median {result.median_s * 1e3:.3f} ms exceeds "
                f"baseline {base_median * 1e3:.3f} ms by more than "
                f"{tolerance:.0%} (limit {limit * 1e3:.3f} ms)"
            )
    return regressions
