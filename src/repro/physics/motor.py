"""Brushless DC (BLDC) motor model.

The paper (Section 2.1.1, Table 3, Figure 9) characterizes motors by their
Kv rating (RPM per volt), the supply voltage (LiPo cell count), and the
propeller they can turn.  This module provides:

* :class:`BldcMotor` — the steady-state electrical model used by the flight
  simulator (current from torque via the torque constant Kt = 1/Kv).
* sizing helpers that, given a target thrust and propeller, pick the Kv and
  estimate motor mass — the backbone of the Figure 9 sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.markers import hot_path, pure
from repro.physics import constants
from repro.physics.propeller import PropellerModel

RPM_PER_RAD_S = 60.0 / (2.0 * math.pi)


def kt_from_kv(kv_rpm_per_v: float) -> float:
    """Torque constant Kt (N*m/A) from the Kv rating (RPM/V).

    Kt = 60 / (2*pi*Kv): the electromechanical duality of DC machines —
    low-Kv motors produce more torque per amp, which is why large propellers
    need low-Kv motors (paper Table 3, 'Thrust Per Motor').
    """
    if kv_rpm_per_v <= 0:
        raise ValueError(f"Kv must be positive, got {kv_rpm_per_v}")
    return RPM_PER_RAD_S / kv_rpm_per_v


@dataclass(frozen=True)
class BldcMotor:
    """Steady-state BLDC motor: V = I*R + omega/Kv, torque = Kt*(I - I0)."""

    kv_rpm_per_v: float
    resistance_ohm: float = 0.10
    no_load_current_a: float = 0.5
    mass_g: float = 30.0
    max_current_a: float = 30.0

    def __post_init__(self) -> None:
        if self.kv_rpm_per_v <= 0:
            raise ValueError(f"Kv must be positive, got {self.kv_rpm_per_v}")
        if self.resistance_ohm < 0:
            raise ValueError("winding resistance cannot be negative")
        if self.no_load_current_a < 0:
            raise ValueError("no-load current cannot be negative")
        if self.max_current_a <= 0:
            raise ValueError("max current must be positive")

    @property
    def kt_nm_per_a(self) -> float:
        return kt_from_kv(self.kv_rpm_per_v)

    def current_for_torque_a(self, torque_nm: float) -> float:
        """Phase current (A) to produce ``torque_nm`` at the shaft."""
        if torque_nm < 0:
            raise ValueError(f"torque must be non-negative, got {torque_nm}")
        return torque_nm / self.kt_nm_per_a + self.no_load_current_a

    def voltage_for_operating_point(self, rev_per_s: float, current_a: float) -> float:
        """Terminal voltage (V) to spin at ``rev_per_s`` while drawing ``current_a``."""
        omega_rad_s = rev_per_s * 2.0 * math.pi
        back_emf = omega_rad_s / (self.kv_rpm_per_v / RPM_PER_RAD_S)
        return back_emf + current_a * self.resistance_ohm

    def max_rev_per_s(self, supply_v: float) -> float:
        """No-load top speed (rev/s) at ``supply_v`` volts."""
        if supply_v <= 0:
            raise ValueError(f"supply voltage must be positive, got {supply_v}")
        return self.kv_rpm_per_v * supply_v / 60.0

    def electrical_power_w(self, rev_per_s: float, torque_nm: float) -> float:
        """Electrical input power (W) at the given mechanical operating point."""
        current = self.current_for_torque_a(torque_nm)
        voltage = self.voltage_for_operating_point(rev_per_s, current)
        return voltage * current

    def operating_point(
        self, propeller: PropellerModel, thrust_n: float, supply_v: float
    ) -> "MotorOperatingPoint":
        """Solve the steady-state point where the propeller produces ``thrust_n``.

        Raises :class:`MotorSaturationError` when the supply voltage cannot
        reach the required speed or the current exceeds the motor limit.
        """
        rev_per_s = propeller.rev_per_s_for_thrust(thrust_n)
        torque = propeller.torque_nm(rev_per_s)
        current = self.current_for_torque_a(torque)
        voltage = self.voltage_for_operating_point(rev_per_s, current)
        if voltage > supply_v * 1.0001:
            raise MotorSaturationError(
                f"needs {voltage:.1f} V but supply is {supply_v:.1f} V "
                f"(Kv={self.kv_rpm_per_v:.0f}, thrust={thrust_n:.1f} N)"
            )
        if current > self.max_current_a:
            raise MotorSaturationError(
                f"needs {current:.1f} A but motor limit is {self.max_current_a:.1f} A"
            )
        return MotorOperatingPoint(
            rev_per_s=rev_per_s,
            torque_nm=torque,
            current_a=current,
            voltage_v=voltage,
            electrical_power_w=voltage * current,
        )


class MotorSaturationError(RuntimeError):
    """Raised when a motor cannot reach the requested operating point."""


@dataclass(frozen=True)
class MotorOperatingPoint:
    """Solved steady state of a motor-propeller pair."""

    rev_per_s: float
    torque_nm: float
    current_a: float
    voltage_v: float
    electrical_power_w: float

    @property
    def rpm(self) -> float:
        return self.rev_per_s * 60.0


@pure
@hot_path
def required_kv_for(
    propeller: PropellerModel,
    max_thrust_g: float,
    supply_v: float,
    headroom: float = 1.15,
) -> float:
    """Kv rating (RPM/V) needed to reach ``max_thrust_g`` on ``supply_v`` volts.

    The motor must reach the RPM where the propeller produces the max thrust,
    with some voltage headroom for control authority.  Small propellers need
    enormous RPM and thus huge Kv on low cell counts — reproducing the
    51000 Kv (1S/1") to 420 Kv (6S/20") span in Figure 9.
    """
    if max_thrust_g <= 0:
        raise ValueError(f"max thrust must be positive, got {max_thrust_g}")
    if supply_v <= 0:
        raise ValueError(f"supply voltage must be positive, got {supply_v}")
    rpm_needed = propeller.rpm_for_thrust_grams(max_thrust_g) * headroom
    return rpm_needed / supply_v


@pure
@hot_path
def motor_mass_g_for(kv_rpm_per_v: float, max_thrust_g: float) -> float:
    """Estimated motor mass (g) from its torque class.

    Motor mass tracks required torque: low-Kv, high-thrust motors need more
    poles and larger diameters (paper: 5 g/motor at 100 mm frames up to
    100 g/motor at ~1000 mm frames).  We model mass against the peak torque
    the motor must produce, calibrated to that 5–100 g span.
    """
    if kv_rpm_per_v <= 0:
        raise ValueError(f"Kv must be positive, got {kv_rpm_per_v}")
    if max_thrust_g <= 0:
        raise ValueError(f"max thrust must be positive, got {max_thrust_g}")
    # Peak torque ~ thrust * (effective moment arm); the arm scales inversely
    # with Kv (bigger props, slower spin, more torque).  Calibrated to the
    # paper's span: ~5 g/motor on 100 mm frames, ~150 g on 800-1000 mm.
    torque_proxy = max_thrust_g / math.sqrt(kv_rpm_per_v)
    # x^0.75 spelled as sqrt(x*sqrt(x)): exactly-rounded ops keep the scalar
    # path bit-identical to the vectorized engine (repro.core.batch).
    mass = 4.2 * math.sqrt(torque_proxy * math.sqrt(torque_proxy))
    return max(2.0, mass)


def size_motor_for(
    propeller: PropellerModel,
    max_thrust_g: float,
    supply_v: float,
) -> BldcMotor:
    """Pick a motor (Kv, mass, limits) that lifts ``max_thrust_g`` via ``propeller``.

    This is the catalog-free analytic sizing used by the Figure 9/10 sweeps;
    the components catalog wraps the same relations in discrete products.
    """
    kv = required_kv_for(propeller, max_thrust_g, supply_v)
    mass_g = motor_mass_g_for(kv, max_thrust_g)
    rev_per_s = propeller.rev_per_s_for_thrust(
        constants.grams_to_newtons(max_thrust_g)
    )
    torque = propeller.torque_nm(rev_per_s)
    kt = kt_from_kv(kv)
    max_current = torque / kt * 1.25 + 0.5
    # Winding resistance scales down with motor size (thicker wire).
    resistance = min(0.5, 2.5 / max(1.0, max_current))
    return BldcMotor(
        kv_rpm_per_v=kv,
        resistance_ohm=resistance,
        no_load_current_a=min(1.0, 0.02 * max_current + 0.1),
        mass_g=mass_g,
        max_current_a=max_current,
    )
