"""Motor mixer: collective thrust + body torques -> four rotor thrusts.

Inverts the X-configuration wrench map of
:meth:`repro.physics.rigid_body.QuadcopterBody.wrench_from_motor_thrusts`;
the low-level thrust controller (Table 2's 1 kHz loop) calls this every
update.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Must match the layout in repro.physics.rigid_body.
_ROTOR_ANGLES = np.deg2rad([45.0, 225.0, 135.0, 315.0])
_ROTOR_SPIN = np.array([1.0, 1.0, -1.0, -1.0])


@dataclass
class MotorMixer:
    """Allocates a desired wrench across the four rotors."""

    arm_length_m: float
    torque_thrust_ratio_m: float = 0.016
    max_thrust_per_motor_n: float = 10.0

    def __post_init__(self) -> None:
        if self.arm_length_m <= 0:
            raise ValueError(f"arm length must be positive, got {self.arm_length_m}")
        if self.torque_thrust_ratio_m <= 0:
            raise ValueError("torque/thrust ratio must be positive")
        if self.max_thrust_per_motor_n <= 0:
            raise ValueError("max thrust must be positive")
        arm_x = self.arm_length_m * np.cos(_ROTOR_ANGLES)
        arm_y = self.arm_length_m * np.sin(_ROTOR_ANGLES)
        # Rows: total thrust, roll torque, pitch torque, yaw torque.
        mixing = np.vstack(
            [
                np.ones(4),
                arm_y,
                -arm_x,
                _ROTOR_SPIN * self.torque_thrust_ratio_m,
            ]
        )
        self._inverse = np.linalg.inv(mixing)

    def mix(
        self,
        total_thrust_n: float,
        torque_nm: np.ndarray,
    ) -> np.ndarray:
        """Per-motor thrusts (N) for a desired collective thrust and torque.

        Commands are clipped to [0, max]; when saturated, collective thrust
        is preserved preferentially over yaw torque, mirroring real mixers.
        """
        if total_thrust_n < 0:
            raise ValueError(f"thrust cannot be negative, got {total_thrust_n}")
        torque = np.asarray(torque_nm, dtype=float)
        if torque.shape != (3,):
            raise ValueError(f"torque must be a 3-vector, got shape {torque.shape}")
        wrench = np.concatenate([[total_thrust_n], torque])
        thrusts = self._inverse @ wrench
        if np.any(thrusts < 0.0) or np.any(thrusts > self.max_thrust_per_motor_n):
            # Shed yaw authority first, then rescale towards hover.
            wrench_no_yaw = wrench.copy()
            wrench_no_yaw[3] *= 0.25
            thrusts = self._inverse @ wrench_no_yaw
        return np.clip(thrusts, 0.0, self.max_thrust_per_motor_n)
