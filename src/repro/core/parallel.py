"""Opt-in parallel runner for simulator-backed sweep workloads.

The vectorized engine (:mod:`repro.core.batch`) makes the closed-form
Equation 1-7 sweeps cheap enough that process parallelism would only add
overhead.  Simulator-backed studies are different: each design point costs
a full :class:`repro.sim.simulator.FlightSimulator` run (tens of thousands
of physics ticks of pure-Python work), so fanning points out across worker
processes wins near-linearly.

:class:`ParallelSweepRunner` wraps ``concurrent.futures.ProcessPoolExecutor``
with the guarantees a reproduction repo needs:

* **Deterministic chunking** — items are split into fixed-size contiguous
  chunks ``[items[0:n], items[n:2n], ...]``; the split depends only on the
  input order and :class:`SweepRunnerConfig`, never on worker scheduling.
* **Deterministic ordering** — results always come back in input order, so
  a parallel run is a drop-in substitute for the serial loop it replaces.
* **Worker count from config** — ``SweepRunnerConfig.max_workers`` (default:
  ``os.cpu_count()``); ``parallel=False`` runs everything inline in the
  calling process, which is the mode tests use to stay hermetic.

The mapped callable runs in worker processes, so it (and its arguments)
must be picklable — define it at module level, not as a lambda or closure.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


@dataclass(frozen=True)
class SweepRunnerConfig:
    """Worker-pool controls for :class:`ParallelSweepRunner`."""

    max_workers: Optional[int] = None
    chunk_size: int = 4
    parallel: bool = True

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError(
                f"max_workers must be positive, got {self.max_workers}"
            )
        if self.chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")

    @property
    def resolved_workers(self) -> int:
        """Worker count after applying the ``os.cpu_count()`` default."""
        if self.max_workers is not None:
            return self.max_workers
        return max(1, os.cpu_count() or 1)


def _run_chunk(
    fn: Callable[[_ItemT], _ResultT], chunk: Sequence[_ItemT]
) -> List[_ResultT]:
    """Evaluate one contiguous chunk in a worker process."""
    return [fn(item) for item in chunk]


def chunk_items(items: Sequence[_ItemT], chunk_size: int) -> List[Sequence[_ItemT]]:
    """Split ``items`` into contiguous chunks of at most ``chunk_size``."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [items[start : start + chunk_size] for start in range(0, len(items), chunk_size)]


class ParallelSweepRunner:
    """Map a picklable callable over design points across worker processes."""

    def __init__(self, config: Optional[SweepRunnerConfig] = None):
        self.config = config if config is not None else SweepRunnerConfig()

    def map(
        self, fn: Callable[[_ItemT], _ResultT], items: Iterable[_ItemT]
    ) -> List[_ResultT]:
        """``[fn(item) for item in items]`` — possibly across processes.

        Results are returned in input order.  An exception raised by ``fn``
        for any item propagates to the caller (the executor is shut down
        first), matching the serial loop's behavior; callables that must
        survive infeasible points should catch and encode their own errors.
        """
        materialized = list(items)
        if not materialized:
            return []
        workers = min(self.config.resolved_workers, len(materialized))
        if not self.config.parallel or workers == 1:
            return [fn(item) for item in materialized]
        chunks = chunk_items(materialized, self.config.chunk_size)
        with ProcessPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
            # Executor.map yields in submission order, which keeps the
            # flattened results aligned with the input order.
            chunk_results = list(pool.map(partial(_run_chunk, fn), chunks))
        return [result for chunk in chunk_results for result in chunk]
