"""Fault-tolerant execution layer for sweeps and chaos campaigns.

Wraps and supersedes the bare ``ProcessPoolExecutor`` under
:class:`repro.core.parallel.ParallelSweepRunner`:

* :mod:`repro.exec.supervised` — the :class:`SupervisedPool`: per-chunk
  futures with retries, heartbeat hang detection, poison-item quarantine
  by bisection, and graceful degradation to inline execution;
* :mod:`repro.exec.journal` — the JSON-lines checkpoint journal that lets
  a killed sweep resume bit-for-bit from its last completed chunk;
* :mod:`repro.exec.policy` / :mod:`repro.exec.report` — the supervision
  knobs and the ``RUNNING -> RETRYING -> DEGRADED -> INLINE`` accounting;
* :mod:`repro.exec.faultsim` — the self-chaos harness that injects
  crash/die/hang/slow/flaky behavior into worker callables, so the
  layer's own guarantees are tested with the repo's fault-injection
  methodology;
* :mod:`repro.exec.errors` — structured replacements for the opaque
  ``BrokenProcessPool``.

Exports resolve lazily (PEP 562): ``repro.core.parallel`` imports
submodules of this package at module level, and a lazy ``__init__``
keeps that edge acyclic.
"""

from importlib import import_module
from typing import Any, List

_EXPORTS = {
    "SupervisedPool": "repro.exec.supervised",
    "ExecutionOutcome": "repro.exec.supervised",
    "QuarantinedItem": "repro.exec.supervised",
    "ExecutionPolicy": "repro.exec.policy",
    "ExecState": "repro.exec.report",
    "ExecutionReport": "repro.exec.report",
    "QuarantineRecord": "repro.exec.report",
    "QuarantineReport": "repro.exec.report",
    "CheckpointJournal": "repro.exec.journal",
    "JournalEntry": "repro.exec.journal",
    "WorkerCrashError": "repro.exec.errors",
    "ChunkTimeoutError": "repro.exec.errors",
    "ChunkExecutionError": "repro.exec.errors",
    "JournalMismatchError": "repro.exec.errors",
    "FaultyCallable": "repro.exec.faultsim",
    "WorkerFault": "repro.exec.faultsim",
    "WorkerFaultSpec": "repro.exec.faultsim",
}

__all__: List[str] = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
