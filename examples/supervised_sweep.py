#!/usr/bin/env python
"""Fault-tolerant sweeps: survive crashing workers, resume a killed run.

Design-space sweeps and chaos campaigns are hours of embarrassingly
parallel work — exactly the workloads that die at hour three to one bad
worker or one OOM kill.  This example drives the supervised execution
layer (:mod:`repro.exec`) through its paces with the self-chaos harness:

1. a sweep where one item *always* crashes its worker: the supervisor
   bisects the failing chunk, quarantines the poison item, and returns
   every survivor bit-for-bit identical to a serial run;
2. a flaky sweep where an item fails once then succeeds: retried with
   capped exponential backoff, no quarantine;
3. a checkpointed sweep "killed" halfway (the journal is truncated to
   simulate SIGKILL), then resumed — completed chunks are replayed from
   the journal, only the remainder is recomputed.

Run:  python examples/supervised_sweep.py
"""

import tempfile

from repro.exec.faultsim import (
    FAULT_CRASH,
    FaultyCallable,
    WorkerFaultSpec,
)
from repro.exec.policy import ExecutionPolicy
from repro.exec.supervised import QuarantinedItem, SupervisedPool

ITEMS = list(range(12))


def evaluate_design(index: int) -> int:
    """Stand-in for one design-point evaluation."""
    return index * index


def poison_sweep(state_dir: str) -> None:
    print("== 1. Poison item: quarantine instead of abort ==")
    faulty = FaultyCallable(
        evaluate_design, {5: WorkerFaultSpec(FAULT_CRASH)}, state_dir
    )
    policy = ExecutionPolicy(max_attempts=2, backoff_base_s=0.01)
    outcome = SupervisedPool(parallel=False, chunk_size=4, policy=policy).map(
        faulty, ITEMS
    )
    for index, value in enumerate(outcome.results):
        marker = "QUARANTINED" if isinstance(value, QuarantinedItem) else value
        print(f"  item {index:2d} -> {marker}")
    report = outcome.report.quarantine_report()
    print(f"  quarantined items: {report.item_indices}")
    print(f"  final state: {outcome.report.state}\n")


def flaky_sweep(state_dir: str) -> None:
    print("== 2. Flaky item: retried, not quarantined ==")
    faulty = FaultyCallable(
        evaluate_design,
        {7: WorkerFaultSpec(FAULT_CRASH, until_attempt=1)},
        state_dir,
    )
    policy = ExecutionPolicy(backoff_base_s=0.01)
    outcome = SupervisedPool(parallel=False, chunk_size=4, policy=policy).map(
        faulty, ITEMS
    )
    assert outcome.results == [evaluate_design(item) for item in ITEMS]
    print("  results match serial loop: True")
    print(f"  retries charged: {outcome.report.retries}")
    print(f"  quarantined: {len(outcome.report.quarantined)}\n")


def checkpointed_sweep(state_dir: str) -> None:
    print("== 3. Checkpoint journal: kill at 50%, resume ==")
    journal = f"{state_dir}/sweep.jsonl"
    SupervisedPool(parallel=False, chunk_size=3, journal=journal).map(
        evaluate_design, ITEMS
    )
    # Simulate SIGKILL after two of four chunks were durably journaled.
    with open(journal, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    with open(journal, "w", encoding="utf-8") as handle:
        handle.writelines(lines[:3])  # header + 2 chunks
    outcome = SupervisedPool(parallel=False, chunk_size=3, journal=journal).map(
        evaluate_design, ITEMS
    )
    assert outcome.results == [evaluate_design(item) for item in ITEMS]
    print(f"  chunks resumed from journal: {outcome.report.chunks_resumed}")
    print(f"  chunks recomputed: {outcome.report.chunks_completed}")
    print("  resumed results identical to uninterrupted run: True")
    print()
    print("For the real thing, checkpoint a chaos campaign with:")
    print("  python -m repro.chaos --checkpoint run/journal.jsonl ...")
    print("and after a kill, resume it with:")
    print("  python -m repro.chaos --checkpoint run/journal.jsonl --resume ...")


def main() -> None:
    with tempfile.TemporaryDirectory() as state_dir:
        poison_sweep(state_dir)
    with tempfile.TemporaryDirectory() as state_dir:
        flaky_sweep(state_dir)
    with tempfile.TemporaryDirectory() as state_dir:
        checkpointed_sweep(state_dir)


if __name__ == "__main__":
    main()
