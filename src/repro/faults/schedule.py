"""Deterministic, composable fault schedules.

A :class:`FaultSchedule` is a list of time-windowed :class:`FaultEvent`\\ s —
the reliability envelope a run is flown under.  Schedules carry no
randomness themselves: every stochastic element (burst-loss channels, sensor
noise) lives behind an explicitly seeded generator, so the same schedule +
the same seeds reproduces the same flight bit-for-bit, matching the repo's
deterministic-catalog philosophy.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple


class FaultKind(enum.Enum):
    """Every injectable fault class, grouped by the subsystem it attacks."""

    # Sensors (repro.sensors)
    GPS_LOSS = "gps_loss"
    IMU_BIAS = "imu_bias"
    BARO_FREEZE = "baro_freeze"
    # Power (repro.physics.battery_model)
    BATTERY_SAG = "battery_sag"
    BATTERY_DRAIN = "battery_drain"
    # Propulsion (repro.control.mixer / repro.physics.esc_model)
    MOTOR_DEGRADATION = "motor_degradation"
    ESC_THERMAL = "esc_thermal"
    # Communication (repro.autopilot.mavlink)
    LINK_BLACKOUT = "link_blackout"
    LINK_BURST = "link_burst"
    # Off-board compute (repro.autopilot.offload)
    OFFLOAD_STALL = "offload_stall"
    OFFLOAD_CRASH = "offload_crash"
    # Perception (repro.slam via repro.faults.perception)
    FEATURE_DROUGHT = "feature_drought"
    FRAME_CORRUPTION = "frame_corruption"
    # Compute platform (repro.resilience.thermal)
    COMPUTE_THROTTLE = "compute_throttle"


#: Kinds that interrupt the offload pose stream while active.
OFFLOAD_KINDS = (FaultKind.OFFLOAD_STALL, FaultKind.OFFLOAD_CRASH)

#: Kinds that attack the perception front end (camera frames, features).
PERCEPTION_KINDS = (
    FaultKind.FEATURE_DROUGHT,
    FaultKind.FRAME_CORRUPTION,
    FaultKind.COMPUTE_THROTTLE,
)


@dataclass(frozen=True)
class FaultEvent:
    """One fault active over [start_s, end_s)."""

    kind: FaultKind
    start_s: float
    end_s: float = math.inf
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError(f"fault cannot start before t=0: {self.start_s}")
        if self.end_s <= self.start_s:
            raise ValueError(
                f"fault must end after it starts: [{self.start_s}, {self.end_s})"
            )

    @classmethod
    def make(
        cls, kind: FaultKind, start_s: float, end_s: float = math.inf, **params
    ) -> "FaultEvent":
        """Keyword-friendly constructor: params become the frozen tuple."""
        return cls(
            kind=kind,
            start_s=start_s,
            end_s=end_s,
            params=tuple(sorted((k, float(v)) for k, v in params.items())),
        )

    @property
    def param_dict(self) -> Dict[str, float]:
        return dict(self.params)

    def active(self, time_s: float) -> bool:
        return self.start_s <= time_s < self.end_s

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding (open-ended windows encode ``end_s`` as None)."""
        return {
            "kind": self.kind.value,
            "start_s": self.start_s,
            "end_s": None if math.isinf(self.end_s) else self.end_s,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        end_s = data.get("end_s")
        return cls.make(
            FaultKind(data["kind"]),
            start_s=float(data["start_s"]),
            end_s=math.inf if end_s is None else float(end_s),
            **{str(k): float(v) for k, v in dict(data.get("params", {})).items()},
        )


@dataclass
class FaultSchedule:
    """An ordered, composable set of fault events for one run."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: (e.start_s, e.kind.value))

    def add(
        self, kind: FaultKind, start_s: float, end_s: float = math.inf, **params
    ) -> "FaultSchedule":
        """Append an event (fluent: returns self)."""
        self.events.append(FaultEvent.make(kind, start_s, end_s, **params))
        self.events.sort(key=lambda e: (e.start_s, e.kind.value))
        return self

    def compose(self, other: "FaultSchedule") -> "FaultSchedule":
        """A new schedule containing both runs' events."""
        return FaultSchedule(events=list(self.events) + list(other.events))

    def active(self, time_s: float) -> List[FaultEvent]:
        return [event for event in self.events if event.active(time_s)]

    def offload_blocked(self, time_s: float) -> bool:
        """True while any off-board-compute fault interrupts the pose stream."""
        return any(
            event.kind in OFFLOAD_KINDS for event in self.active(time_s)
        )

    def windows(self, kind: FaultKind) -> Sequence[Tuple[float, float]]:
        """(start, end) windows of every event of ``kind`` — the format the
        offload node's stall/crash parameters take."""
        return tuple(
            (event.start_s, event.end_s)
            for event in self.events
            if event.kind is kind
        )

    @property
    def first_fault_s(self) -> float:
        """Onset of the earliest fault (inf for an empty schedule)."""
        return self.events[0].start_s if self.events else math.inf

    def to_jsonable(self) -> List[Dict[str, Any]]:
        """The schedule as a list of JSON-safe event dicts.

        This is the black-box flight recorder's on-disk format: a failing
        chaos trial stores its exact schedule so the replay harness can
        reconstruct it with :meth:`from_jsonable` and re-fly the trial
        bit-for-bit.
        """
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_jsonable(cls, data: Sequence[Dict[str, Any]]) -> "FaultSchedule":
        return cls(events=[FaultEvent.from_dict(item) for item in data])

    def __len__(self) -> int:
        return len(self.events)
