"""Commercial drone reference database.

The paper validates its power model against released specs of commercial
drones (the diamond markers in Figure 10 and the whole of Figure 11).
Specs below are the publicly released weight / battery / flight-time numbers
for the drones the paper cites; derived quantities (hover power, maneuver
power, heavy-compute share) are computed with the same Equations 3-7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.physics import constants


@dataclass(frozen=True)
class CommercialDrone:
    """Released specifications of a commercial drone."""

    name: str
    weight_g: float
    wheelbase_mm: float
    battery_cells: int
    battery_mah: float
    flight_time_min: float
    size_class: str  # "nano", "small", "medium", "large"

    def __post_init__(self) -> None:
        if self.weight_g <= 0:
            raise ValueError(f"weight must be positive, got {self.weight_g}")
        if self.battery_cells <= 0 or self.battery_mah <= 0:
            raise ValueError("battery configuration must be positive")
        if self.flight_time_min <= 0:
            raise ValueError(f"flight time must be positive: {self.flight_time_min}")

    @property
    def battery_voltage_v(self) -> float:
        return self.battery_cells * constants.LIPO_CELL_NOMINAL_V

    @property
    def usable_energy_wh(self) -> float:
        """Battery energy inside the 85% drain limit."""
        return (
            self.battery_mah / 1000.0
            * self.battery_voltage_v
            * constants.LIPO_DRAIN_LIMIT
        )

    @property
    def average_flight_power_w(self) -> float:
        """Average total power implied by released flight time and battery.

        This is the validation trick of Section 3.2: flight time and battery
        configuration are released, so average power falls out directly.
        """
        return self.usable_energy_wh / (self.flight_time_min / 60.0)

    def hover_power_w(self, hover_to_average: float = 0.85) -> float:
        """Hover power, slightly below the mission-average power."""
        if not 0.0 < hover_to_average <= 1.0:
            raise ValueError("hover/average ratio must be in (0, 1]")
        return self.average_flight_power_w * hover_to_average

    def maneuver_power_w(self, maneuver_to_average: float = 1.9) -> float:
        """Maneuvering power (60-70% load band vs hover's 20-30%)."""
        if maneuver_to_average < 1.0:
            raise ValueError("maneuver/average ratio must be >= 1")
        return self.average_flight_power_w * maneuver_to_average

    def heavy_compute_share_hovering(self, compute_power_w: float) -> float:
        """Fraction of hover power consumed by heavy computation (Fig 11)."""
        if compute_power_w < 0:
            raise ValueError("compute power cannot be negative")
        hover = self.hover_power_w()
        return compute_power_w / (hover + compute_power_w)


#: Drones plotted as validation diamonds in Figure 10 and bars in Figure 11.
COMMERCIAL_DRONES: List[CommercialDrone] = [
    CommercialDrone("Parrot Mambo", 63.0, 180.0, 1, 660.0, 9.0, "nano"),
    CommercialDrone("Parrot Anafi", 320.0, 240.0, 2, 2700.0, 25.0, "small"),
    CommercialDrone("DJI Spark", 300.0, 170.0, 3, 1480.0, 16.0, "small"),
    CommercialDrone("DJI Mavic Air", 430.0, 213.0, 3, 2375.0, 21.0, "small"),
    CommercialDrone("Parrot Bebop 2", 500.0, 328.0, 3, 2700.0, 25.0, "small"),
    CommercialDrone("Skydio 2", 775.0, 350.0, 4, 4280.0, 23.0, "small"),
    CommercialDrone("DJI Mavic", 734.0, 335.0, 3, 3830.0, 27.0, "medium"),
    CommercialDrone("DJI Phantom 4", 1380.0, 350.0, 4, 5350.0, 28.0, "medium"),
    CommercialDrone("DJI Matrice 100", 2355.0, 650.0, 6, 4500.0, 22.0, "large"),
]

#: The drones in Figure 11's small-drone study, in the paper's plot order.
FIGURE11_DRONES = (
    "Parrot Mambo",
    "Parrot Anafi",
    "DJI Spark",
    "DJI Mavic Air",
    "Parrot Bebop 2",
    "Skydio 2",
)


def drones_by_name() -> Dict[str, CommercialDrone]:
    return {d.name: d for d in COMMERCIAL_DRONES}


def find_drone(name: str) -> CommercialDrone:
    wanted = name.strip().lower()
    for drone in COMMERCIAL_DRONES:
        if drone.name.lower() == wanted:
            return drone
    known = ", ".join(d.name for d in COMMERCIAL_DRONES)
    raise KeyError(f"unknown drone {name!r}; known drones: {known}")


def drones_for_wheelbase(wheelbase_mm: float, tolerance_mm: float = 250.0) -> List[CommercialDrone]:
    """Commercial drones comparable to a given wheelbase class (Fig 10 diamonds)."""
    if wheelbase_mm <= 0:
        raise ValueError(f"wheelbase must be positive, got {wheelbase_mm}")
    return [
        d
        for d in COMMERCIAL_DRONES
        if abs(d.wheelbase_mm - wheelbase_mm) <= tolerance_mm
    ]
