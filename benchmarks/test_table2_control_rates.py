"""Table 2: (a) on-board sensor data frequencies; (b) controller update
frequencies and response times — measured from the running multirate stack."""

import numpy as np
import pytest

from repro.control.cascade import HierarchicalController
from repro.physics import constants
from repro.physics.rigid_body import QuadcopterBody
from repro.sensors.suite import TABLE2A_SENSOR_RATES_HZ, SensorSuite

from conftest import print_table


def _measure_sensor_rates(duration_s: float = 5.0):
    suite = SensorSuite()
    body = QuadcopterBody(mass_kg=1.0, arm_length_m=0.225)
    ticks = int(duration_s * 1000)
    for _ in range(ticks):
        suite.poll(body.state, 1e-3)
    return {
        name: count / duration_s
        for name, count in suite.sample_counts().items()
    }


def test_table2a_sensor_rates(benchmark):
    rates = benchmark.pedantic(_measure_sensor_rates, rounds=1, iterations=1)

    paper_bands = {
        "imu": TABLE2A_SENSOR_RATES_HZ["accelerometer"],
        "barometer": TABLE2A_SENSOR_RATES_HZ["barometer"],
        "gps": TABLE2A_SENSOR_RATES_HZ["gps"],
        "magnetometer": TABLE2A_SENSOR_RATES_HZ["magnetometer"],
    }
    rows = [
        (name, f"{rate:.0f} Hz", f"{band[0]:.0f}-{band[1]:.0f} Hz")
        for (name, rate), band in zip(sorted(rates.items()),
                                      (paper_bands[n] for n in sorted(rates)))
    ]
    print_table(
        "Table 2a — measured sensor data frequencies",
        ("sensor", "measured", "paper band"),
        rows,
    )
    for name, rate in rates.items():
        low, high = paper_bands[name]
        assert low * 0.9 <= rate <= high * 1.1, name


def _measure_controller_rates(duration_s: float = 2.0):
    body = QuadcopterBody(mass_kg=1.0, arm_length_m=0.225)
    controller = HierarchicalController(
        mass_kg=1.0,
        arm_length_m=0.225,
        inertia_kg_m2=body.inertia_kg_m2,
        max_thrust_per_motor_n=5.0,
    )
    controller.set_position_target(np.array([0.0, 0.0, 2.0]))
    ticks = int(duration_s * 1000)
    for _ in range(ticks):
        thrusts = controller.tick(body.state, 1e-3)
        body.step(thrusts, 1e-3)
    return {
        name: count / duration_s
        for name, count in controller.update_counts().items()
    }


def test_table2b_controller_rates(benchmark):
    rates = benchmark.pedantic(_measure_controller_rates, rounds=1, iterations=1)

    paper = {
        "thrust": (constants.THRUST_LOOP_HZ, "50 ms"),
        "attitude": (constants.ATTITUDE_LOOP_HZ, "100 ms"),
        "position": (constants.POSITION_LOOP_HZ, "1 s"),
    }
    rows = [
        (name, f"{rates[name]:.0f} Hz", f"{freq:.0f} Hz", response)
        for name, (freq, response) in paper.items()
    ]
    print_table(
        "Table 2b — controller update frequencies (and paper response times)",
        ("controller", "measured", "paper", "paper response"),
        rows,
    )
    for name, (freq, _) in paper.items():
        assert rates[name] == pytest.approx(freq, rel=0.05), name

    # The inner-loop envelope the paper derives: 50-500 Hz is enough, and no
    # level needs more than 1 kHz.
    assert max(rates.values()) <= 1000.0 * 1.01
