"""Unit tests: the Figure 14 reference drone build."""

import pytest

from repro.reference.build import (
    EXTRA_PAYLOAD_CAPACITY_G,
    FIGURE14_WEIGHTS_G,
    TOTAL_COST_USD,
    avionics_weight_g,
    catalog_consistency,
    major_components,
    simulator_model,
    total_weight_g,
    weight_breakdown,
)


class TestFigure14:
    def test_total_weight(self):
        assert total_weight_g() == pytest.approx(1071.0)

    def test_thirteen_parts(self):
        assert len(FIGURE14_WEIGHTS_G) == 13

    def test_part_weights_match_figure(self):
        assert FIGURE14_WEIGHTS_G["frame"] == 272.0
        assert FIGURE14_WEIGHTS_G["battery"] == 248.0
        assert FIGURE14_WEIGHTS_G["motors"] == 220.0
        assert FIGURE14_WEIGHTS_G["ppm_encoder"] == 9.0

    def test_shares_sum_to_one(self):
        assert sum(p.share for p in weight_breakdown()) == pytest.approx(1.0)

    def test_figure14_percentages(self):
        """The figure labels frame 25%, battery 23%, motors 21%, ESC 10%."""
        shares = {p.name: p.share for p in weight_breakdown()}
        assert shares["frame"] == pytest.approx(0.25, abs=0.01)
        assert shares["battery"] == pytest.approx(0.23, abs=0.01)
        assert shares["motors"] == pytest.approx(0.21, abs=0.01)
        assert shares["esc"] == pytest.approx(0.10, abs=0.01)

    def test_major_components_are_paper_big_four(self):
        assert major_components() == ["frame", "battery", "motors", "esc"]

    def test_cost_and_payload(self):
        assert TOTAL_COST_USD == 500.0
        assert EXTRA_PAYLOAD_CAPACITY_G == 200.0

    def test_avionics_lump_near_80g(self):
        assert avionics_weight_g() == pytest.approx(86.0)

    def test_catalog_consistency_trends(self):
        """Section 3.1 fits land within ~2x of the actual build parts."""
        for name, ratio in catalog_consistency().items():
            assert 0.5 < ratio < 2.0, name

    def test_simulator_model_flies(self):
        from repro.sim.simulator import FlightSimulator

        model = simulator_model()
        sim = FlightSimulator(model, physics_rate_hz=400.0)
        sim.goto([0.0, 0.0, 3.0])
        sim.run_for(6.0)
        assert sim.body.state.position_m[2] == pytest.approx(3.0, abs=0.4)

    def test_hover_power_matches_figure16b(self):
        """The reference build hovers near the paper's ~130 W average."""
        from repro.sim.simulator import FlightSimulator

        sim = FlightSimulator(simulator_model(), physics_rate_hz=400.0)
        sim.goto([0.0, 0.0, 3.0])
        sim.run_for(8.0)
        power = sim.average_power_w(since_s=6.0)
        assert 80.0 < power < 160.0
