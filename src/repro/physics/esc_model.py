"""ESC electrical details: DShot digital protocol and commutation.

Paper Section 2.1.2: "ESC protocols usually go beyond PWM signals for
modern-day drones due to high precision in control (e.g., the DShot1200
protocol has a communication frequency of 74.6 KHz)" and ESCs need "a
switching frequency of 60-600 KHz while delivering hundreds of Watts."

This module implements the real DShot frame format (11-bit throttle,
telemetry-request bit, 4-bit XOR checksum) and the commutation arithmetic
that produces those switching frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

#: DShot variants and their bit rates (kbit/s).
DSHOT_BITRATES_KBPS = {150: 150.0, 300: 300.0, 600: 600.0, 1200: 1200.0}

DSHOT_FRAME_BITS = 16
DSHOT_THROTTLE_MIN = 48     # values 0-47 are reserved commands
DSHOT_THROTTLE_MAX = 2047


class DshotError(ValueError):
    """Raised on malformed or corrupted DShot frames."""


def dshot_checksum(payload12: int) -> int:
    """4-bit XOR checksum over the three payload nibbles."""
    if not 0 <= payload12 < (1 << 12):
        raise DshotError(f"payload must be 12 bits, got {payload12:#x}")
    return (payload12 ^ (payload12 >> 4) ^ (payload12 >> 8)) & 0x0F


def encode_dshot(throttle: int, telemetry_request: bool = False) -> int:
    """Encode a 16-bit DShot frame.

    Layout: [11-bit throttle][1-bit telemetry][4-bit checksum].
    Throttle 0 is 'motors off'; 1-47 are special commands (not modeled);
    48-2047 map linearly onto the power range.
    """
    if not 0 <= throttle <= DSHOT_THROTTLE_MAX:
        raise DshotError(
            f"throttle must be 0-{DSHOT_THROTTLE_MAX}, got {throttle}"
        )
    payload = (throttle << 1) | int(telemetry_request)
    return (payload << 4) | dshot_checksum(payload)


def decode_dshot(frame: int) -> Tuple[int, bool]:
    """Decode and checksum-verify a frame; returns (throttle, telemetry)."""
    if not 0 <= frame < (1 << DSHOT_FRAME_BITS):
        raise DshotError(f"frame must be 16 bits, got {frame:#x}")
    payload = frame >> 4
    if dshot_checksum(payload) != (frame & 0x0F):
        raise DshotError(f"checksum mismatch in frame {frame:#06x}")
    return payload >> 1, bool(payload & 1)


def throttle_fraction(throttle: int) -> float:
    """Map a DShot throttle value to the [0, 1] power fraction."""
    if throttle < DSHOT_THROTTLE_MIN:
        return 0.0
    return (throttle - DSHOT_THROTTLE_MIN) / (
        DSHOT_THROTTLE_MAX - DSHOT_THROTTLE_MIN
    )


def throttle_value(fraction: float) -> int:
    """Inverse of :func:`throttle_fraction` (clamped to valid range)."""
    if not 0.0 <= fraction <= 1.0:
        raise DshotError(f"fraction must be in [0, 1], got {fraction}")
    if fraction == 0.0:
        return 0
    return DSHOT_THROTTLE_MIN + round(
        fraction * (DSHOT_THROTTLE_MAX - DSHOT_THROTTLE_MIN)
    )


def command_frequency_hz(variant: int = 1200) -> float:
    """Maximum command update frequency of a DShot variant.

    DShot1200 sends 16 bits at 1.2 Mbit/s plus a mandatory inter-frame gap
    of ~2 bit periods: 1.2e6 / 16.086 ~ 74.6 kHz — the paper's figure.
    """
    if variant not in DSHOT_BITRATES_KBPS:
        raise DshotError(
            f"unknown DShot variant {variant}; known: "
            f"{sorted(DSHOT_BITRATES_KBPS)}"
        )
    bit_rate = DSHOT_BITRATES_KBPS[variant] * 1000.0
    return bit_rate / (DSHOT_FRAME_BITS + 0.086)


@dataclass
class DshotLink:
    """A flight-controller-to-ESC command channel speaking DShot.

    Thrust fractions are quantized into DShot frames; corrupted frames are
    rejected by the ESC's checksum and the motor holds its last good
    command — the failure behaviour the digital protocol buys over PWM.
    """

    variant: int = 600
    bit_error_probability: float = 0.0
    seed: int = 17
    sent: int = 0
    rejected: int = 0
    #: Optional deterministic fault injector: frame -> corrupted frame.
    corruption_hook: Optional[Callable[[int], int]] = None

    def __post_init__(self) -> None:
        if self.variant not in DSHOT_BITRATES_KBPS:
            raise DshotError(f"unknown DShot variant {self.variant}")
        if not 0.0 <= self.bit_error_probability < 1.0:
            raise ValueError(
                f"bit error probability must be in [0, 1): "
                f"{self.bit_error_probability}"
            )
        import numpy as np

        self._rng = np.random.default_rng(self.seed)
        self._last_good_fraction = 0.0

    def transmit(self, thrust_fraction: float) -> float:
        """Send one throttle command; returns the fraction the ESC applies.

        A corrupted frame is dropped by the checksum and the previous
        command stays in effect until the next frame (which, at DShot
        rates, is tens of microseconds away).
        """
        if not 0.0 <= thrust_fraction <= 1.0:
            raise DshotError(
                f"thrust fraction must be in [0, 1], got {thrust_fraction}"
            )
        frame = encode_dshot(throttle_value(thrust_fraction))
        self.sent += 1
        if self.corruption_hook is not None:
            frame = self.corruption_hook(frame)
        elif self.bit_error_probability > 0.0:
            for bit in range(DSHOT_FRAME_BITS):
                if self._rng.random() < self.bit_error_probability:
                    frame ^= 1 << bit
        try:
            throttle, _ = decode_dshot(frame)
        except DshotError:
            self.rejected += 1
            return self._last_good_fraction
        self._last_good_fraction = throttle_fraction(throttle)
        return self._last_good_fraction

    @property
    def rejection_rate(self) -> float:
        if self.sent == 0:
            raise ValueError("no frames sent")
        return self.rejected / self.sent


#: ESC thermal protection band: full power below the soft limit, linear
#: derating to the floor at the hard limit (typical BLHeli/AM32 behaviour).
ESC_THROTTLE_SOFT_LIMIT_C = 90.0
ESC_THROTTLE_HARD_LIMIT_C = 125.0
ESC_THERMAL_DERATE_FLOOR = 0.35


def thermal_derate_fraction(
    temperature_c: float,
    soft_limit_c: float = ESC_THROTTLE_SOFT_LIMIT_C,
    hard_limit_c: float = ESC_THROTTLE_HARD_LIMIT_C,
    floor: float = ESC_THERMAL_DERATE_FLOOR,
) -> float:
    """Throttle ceiling [floor, 1] an overheating ESC allows.

    Firmware thermal protection ramps the permitted output down linearly
    between the soft and hard temperature limits rather than cutting the
    motor — losing a rotor mid-air is worse than flying soft.
    """
    if soft_limit_c >= hard_limit_c:
        raise ValueError("soft limit must be below hard limit")
    if not 0.0 < floor <= 1.0:
        raise ValueError(f"derate floor must be in (0, 1], got {floor}")
    if temperature_c <= soft_limit_c:
        return 1.0
    if temperature_c >= hard_limit_c:
        return floor
    span = (temperature_c - soft_limit_c) / (hard_limit_c - soft_limit_c)
    return 1.0 - span * (1.0 - floor)


@dataclass(frozen=True)
class CommutationModel:
    """Six-step BLDC commutation arithmetic."""

    pole_pairs: int = 7  # typical 12N14P hobby motor

    def __post_init__(self) -> None:
        if self.pole_pairs <= 0:
            raise ValueError(f"pole pairs must be positive: {self.pole_pairs}")

    def electrical_frequency_hz(self, rpm: float) -> float:
        """Electrical cycle frequency at a mechanical RPM."""
        if rpm < 0:
            raise ValueError(f"RPM cannot be negative: {rpm}")
        return rpm / 60.0 * self.pole_pairs

    def commutation_frequency_hz(self, rpm: float) -> float:
        """Commutation events per second (6 steps per electrical cycle)."""
        return 6.0 * self.electrical_frequency_hz(rpm)

    def pwm_switching_frequency_hz(
        self, rpm: float, pwm_base_hz: float = 24_000.0
    ) -> float:
        """Total MOSFET switching events per second across the bridge.

        Six FETs chop at the PWM rate plus the commutation transitions —
        older 10 kHz-PWM ESCs land near 60 kHz of events, modern 96 kHz
        racing ESCs near 600 kHz: the paper's 60-600 kHz band.
        """
        if pwm_base_hz <= 0:
            raise ValueError("PWM base frequency must be positive")
        return 6.0 * pwm_base_hz + self.commutation_frequency_hz(rpm)
